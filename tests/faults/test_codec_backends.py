"""Codec backends & the concurrent fragment datapath (ISSUE 9).

Pins the PR 9 contract from DESIGN.md §15:

* **engine parity** (hypothesis): the numpy packed-lane kernel and the
  pure-python translate engine produce byte-identical fragments on the
  encode, reconstruct, and degraded-read paths, for arbitrary shapes,
  lengths (odd/even/empty), and survivor subsets — both engines run in
  CI (the ``REPRO_NO_NUMPY_GF=1`` leg covers a numpy-less host).
* **streaming parity**: ``encode_many``/``data_from_many`` match the
  per-page calls exactly, including the mixed-subset and ragged-batch
  fallbacks.
* **memoisation**: per-(k, m) encode matrices and per-subset
  reconstruction rows are cached with an LRU bound and surfaced through
  ``codec_stats()``; the policy's per-instance subset counters land in
  the MetricsRegistry.
* **fan-out hygiene**: nested protocol batch-framing, the identity-keyed
  fragment memo (zero-page encode-once), and the pagein preference
  order that skips crashed/retired servers without paying a fetch.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MachineSpec
from repro.core import build_cluster
from repro.core.policies.gf256 import (
    ReedSolomon,
    codec_backend,
    codec_stats,
    join_fragments,
    set_codec_backend,
    split_page,
)
from repro.faults import check_page_integrity
from repro.vm.page import (
    clear_fastpath_caches,
    fastpath_stats,
    set_fastpath,
    zero_page,
)
from repro.workloads import SequentialScan

SMALL = MachineSpec(
    name="test-small",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)

_HAS_NUMPY = True
try:
    import numpy  # noqa: F401
except Exception:  # pragma: no cover - the REPRO_NO_NUMPY_GF leg
    _HAS_NUMPY = False


def _both_backends(fn, *args, **kwargs):
    """Run ``fn`` under each available engine; return {backend: result}."""
    results = {}
    for backend in ("python", "numpy") if _HAS_NUMPY else ("python",):
        previous = set_codec_backend(backend)
        try:
            results[backend] = fn(*args, **kwargs)
        finally:
            set_codec_backend(previous)
    return results


# --------------------------------------------------------------------------
# Engine parity (hypothesis).
# --------------------------------------------------------------------------

_SHAPES = st.sampled_from([(2, 1), (3, 2), (4, 2), (2, 2), (5, 3), (1, 1)])


@settings(max_examples=40, deadline=None)
@given(
    shape=_SHAPES,
    contents=st.binary(min_size=0, max_size=129),  # odd cap: exercises tails
    subset_seed=st.integers(min_value=0, max_value=2**31),
)
def test_backends_byte_identical(shape, contents, subset_seed):
    """Encode + every sampled decode subset agree across engines."""
    import itertools
    import random

    k, m = shape
    fragment_size = -(-max(1, len(contents)) // k)
    data = split_page(contents, k, fragment_size)  # zero-pads the tail
    rs = ReedSolomon(k, m)

    parities = _both_backends(rs.encode, data)
    first = next(iter(parities.values()))
    assert all(p == first for p in parities.values())

    fragments = list(data) + list(first)
    rng = random.Random(subset_seed)
    all_subsets = list(itertools.combinations(range(k + m), k))
    for subset in rng.sample(all_subsets, min(4, len(all_subsets))):
        available = {i: fragments[i] for i in subset}
        decodes = _both_backends(rs.data_from, dict(available))
        values = list(decodes.values())
        assert all(v == values[0] for v in values)
        assert b"".join(values[0]) == b"".join(data)


@settings(max_examples=25, deadline=None)
@given(
    shape=_SHAPES,
    pages=st.integers(min_value=1, max_value=5),
    length=st.integers(min_value=1, max_value=65),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_streaming_matches_per_page(shape, pages, length, seed):
    """encode_many / data_from_many == the per-page loops, both engines."""
    import random

    k, m = shape
    rng = random.Random(seed)
    stripes = [
        [bytes(rng.randrange(256) for _ in range(length)) for _ in range(k)]
        for _ in range(pages)
    ]
    rs = ReedSolomon(k, m)

    def encode_both_ways():
        batched = rs.encode_many(stripes)
        singles = [rs.encode(data) for data in stripes]
        return batched, singles

    for batched, singles in _both_backends(encode_both_ways).values():
        assert batched == singles

    parities = [rs.encode(data) for data in stripes]
    # One shared survivor subset (the batchable case) with m data lost.
    lost = rng.sample(range(k), min(m, k))
    survivors = [
        {i: stripe[i] for i in range(k) if i not in lost}
        | {k + j: parity[j] for j in range(m)}
        for stripe, parity in zip(stripes, parities)
    ]

    def decode_both_ways():
        batched = rs.data_from_many([dict(s) for s in survivors])
        singles = [rs.data_from(dict(s)) for s in survivors]
        return batched, singles

    for batched, singles in _both_backends(decode_both_ways).values():
        assert batched == singles
        assert batched == [list(stripe) for stripe in stripes]


def test_streaming_mixed_subsets_fall_back_per_page():
    """Heterogeneous survivor sets decode correctly (per-page fallback)."""
    k, m = 3, 2
    rs = ReedSolomon(k, m)
    stripes = [split_page(bytes(range(30 * i, 30 * i + 30)), k, 10)
               for i in range(1, 4)]
    parities = [rs.encode(data) for data in stripes]
    survivors = [
        {0: stripes[0][0], 1: stripes[0][1], 2: stripes[0][2]},   # all data
        {0: stripes[1][0], 3: parities[1][0], 4: parities[1][1]},  # 2 lost
        {1: stripes[2][1], 2: stripes[2][2], 3: parities[2][0]},   # 1 lost
    ]
    decoded = rs.data_from_many(survivors)
    assert decoded == [list(stripe) for stripe in stripes]


def test_encode_many_rejects_ragged_stripes():
    rs = ReedSolomon(2, 1)
    with pytest.raises(ValueError):
        rs.encode_many([[b"aa", b"bb"], [b"ccc", b"ddd"]])
    with pytest.raises(ValueError):
        rs.encode_many([[b"aa", b"bbb"]])


# --------------------------------------------------------------------------
# Backend selection + coefficient caches.
# --------------------------------------------------------------------------

def test_set_codec_backend_roundtrip_and_errors():
    original = codec_backend()
    try:
        previous = set_codec_backend("python")
        assert previous == original
        assert codec_backend() == "python"
        with pytest.raises(ValueError):
            set_codec_backend("fortran")
        assert codec_backend() == "python"  # failed select changes nothing
        set_codec_backend(None)  # None restores the auto-selection
        assert codec_backend() == original
    finally:
        set_codec_backend(None)


def test_codec_stats_surface_row_caches():
    rs = ReedSolomon(4, 2)
    data = split_page(bytes(range(64)), 4, 16)
    parity = rs.encode(data)
    before = codec_stats()
    available = {0: data[0], 1: data[1], 4: parity[0], 5: parity[1]}
    rs.data_from(dict(available))
    rs.data_from(dict(available))  # same subset: second hit is cached
    after = codec_stats()
    assert after["backend"] == codec_backend()
    assert after["recon_rows_cached"] >= 1
    assert after["recon_row_hits"] > before["recon_row_hits"]
    assert after["encode_matrices"] >= 1


def test_policy_surfaces_subset_counters_in_metrics():
    """Per-instance codec row hit/miss counters land in the registry."""
    cluster = build_cluster(
        policy="ec-2-1",
        machine_spec=SMALL,
        n_servers=8,
        content_mode=True,
        seed=3,
        server_capacity_pages=600,
    )
    cluster.run(SequentialScan(n_pages=300, passes=1, write=True))
    cluster.servers[1].crash()
    report = check_page_integrity(cluster)
    assert report.clean
    snapshot = cluster.metrics.snapshot()
    # Degraded reads hit the reconstruction-row path: the first subset
    # misses, repeats hit — and both streams are per-instance, so the
    # numbers are identical run-to-run regardless of process-global
    # cache warmth.
    assert snapshot["policy.codec_row_misses"] >= 1
    assert snapshot["policy.codec_row_hits"] >= 1


# --------------------------------------------------------------------------
# Fragment memo (content fast path).
# --------------------------------------------------------------------------

def test_fragment_memo_counts_repeat_encodes():
    clear_fastpath_caches()
    cluster = build_cluster(
        policy="ec-2-1",
        machine_spec=SMALL,
        n_servers=8,
        content_mode=True,
        seed=3,
        server_capacity_pages=600,
    )
    # A real run fills the memo: every content-mode pageout records its
    # stripe keyed by payload identity.
    cluster.run(SequentialScan(n_pages=300, passes=2, write=True))
    stats = fastpath_stats()
    assert stats["fragment_entries"] > 0
    # Re-encoding an already-seen shared payload is a pure memo hit and
    # returns the identical fragment list (page_bytes hands out shared
    # objects per (page, version), which is what makes identity keying
    # pay off for re-pageouts of unchanged pages).
    from repro.vm.page import page_bytes

    contents = page_bytes(7, 1, SMALL.page_size)
    first = cluster.policy._encode(contents)
    hits_before = fastpath_stats()["fragment_hits"]
    assert cluster.policy._encode(contents) is first
    assert fastpath_stats()["fragment_hits"] == hits_before + 1


def test_zero_page_fragments_encoded_once():
    clear_fastpath_caches()
    from repro.core.policies.erasure import ErasureCoding

    shape = (2, 1, 4096)
    page = zero_page(8192)
    assert page is zero_page(8192)  # the singleton the memo keys on
    from repro.vm.page import fragment_memo_get, fragment_memo_put

    assert fragment_memo_get(page, shape) is None
    fragment_memo_put(page, shape, ["frags"])
    assert fragment_memo_get(page, shape) == ["frags"]
    assert fragment_memo_get(page, (4, 2, 2048)) is None  # shape-guarded
    assert fastpath_stats()["fragment_hits"] == 1
    assert ErasureCoding is not None  # the consumer of this memo


def test_fragment_memo_disabled_without_fastpath():
    previous = set_fastpath(False)
    try:
        from repro.vm.page import fragment_memo_get, fragment_memo_put

        page = bytes(64)
        fragment_memo_put(page, (2, 1, 32), ["frags"])
        assert fragment_memo_get(page, (2, 1, 32)) is None
        assert fastpath_stats()["fragment_entries"] == 0
    finally:
        set_fastpath(previous)


# --------------------------------------------------------------------------
# Nested batch framing + pagein preference order.
# --------------------------------------------------------------------------

def test_cluster_framing_nests():
    """An inner same-source cluster consumes the shared head; the outer
    frame keeps amortising after it closes."""
    from repro.core.builder import build_cluster as build

    cluster = build(
        policy="no-reliability",
        machine_spec=SMALL,
        n_servers=2,
        server_capacity_pages=600,
    )
    stack = cluster.stack
    sim = cluster.sim

    def drain(src, dst, n):
        for _ in range(n):
            yield from stack.send_page(src, dst, 8192)

    def scenario():
        stack.begin_cluster("client")
        yield from drain("client", "server-0", 1)   # outer head
        stack.begin_cluster("client")               # same-source nest
        yield from drain("client", "server-0", 2)   # both batched
        stack.end_cluster()
        yield from drain("client", "server-0", 1)   # still batched
        stack.end_cluster()
        yield from drain("client", "server-0", 1)   # full cost again

    sim.process(scenario())
    sim.run()
    counters = stack.counters
    assert counters["batch_heads"] == 1
    assert counters["batched_page_sends"] == 3

    # Different-source nesting gets its own head and restores the outer
    # frame's amortisation when it closes.
    def mixed_sources():
        stack.begin_cluster("client")
        yield from drain("client", "server-0", 2)    # new head + 1 batched
        stack.begin_cluster("server-0")
        yield from drain("server-0", "server-1", 2)  # own head + 1 batched
        stack.end_cluster()
        yield from drain("client", "server-0", 1)    # outer still batched
        stack.end_cluster()

    sim.process(mixed_sources())
    sim.run()
    assert counters["batch_heads"] == 3
    assert counters["batched_page_sends"] == 6


def test_pagein_skips_crashed_and_retired_servers():
    """Known-dead fragment holders cost zero fetch attempts."""
    cluster = build_cluster(
        policy="ec-2-1",
        machine_spec=SMALL,
        n_servers=8,
        content_mode=True,
        seed=3,
        server_capacity_pages=600,
    )
    cluster.run(SequentialScan(n_pages=300, passes=1, write=True))
    baseline_timeouts = cluster.stack.counters["rpc_timeouts"]
    cluster.servers[0].crash()
    report = check_page_integrity(cluster)
    assert report.clean
    counters = cluster.policy.counters
    # Every stripe with a fragment on the dead server skipped it up
    # front instead of burning a fetch attempt on it.
    assert counters["fetches_skipped"] > 0
    assert cluster.stack.counters["rpc_timeouts"] == baseline_timeouts
