"""Unit tests for the CSMA/CD Ethernet model."""

import pytest

from repro.config import PAGE_SIZE, EthernetSpec
from repro.sim import RngRegistry, Simulator
from repro.net import EthernetCsmaCd


def make_net(sim, hosts=("a", "b"), spec=None):
    net = EthernetCsmaCd(sim, spec=spec, rngs=RngRegistry(seed=11))
    for host in hosts:
        net.attach(host)
    return net


def run_transfer(sim, net, src, dst, nbytes):
    def driver(sim, net):
        yield net.transfer(src, dst, nbytes)
        return sim.now

    return sim.run_until_complete(sim.process(driver(sim, net)))


def test_single_frame_latency():
    sim = Simulator()
    net = make_net(sim)
    spec = net.spec
    elapsed = run_transfer(sim, net, "a", "b", 1000)
    # gap + contention slot + frame wire time
    expected = spec.interframe_gap + spec.slot_time + spec.frame_time(1000)
    assert elapsed == pytest.approx(expected, rel=1e-9)


def test_page_fragments_into_mtu_frames():
    sim = Simulator()
    net = make_net(sim)
    run_transfer(sim, net, "a", "b", PAGE_SIZE)
    # 8192 = 5 * 1500 + 692 -> 6 frames
    assert net.stats.counters["frames"] == 6
    assert net.stats.counters["messages"] == 1
    assert net.stats.counters["bytes"] == PAGE_SIZE


def test_page_wire_time_matches_paper_scale():
    """An 8 KB page should take 7-10 ms on an idle 10 Mbit/s Ethernet."""
    sim = Simulator()
    net = make_net(sim)
    elapsed = run_transfer(sim, net, "a", "b", PAGE_SIZE)
    assert 0.006 < elapsed < 0.010


def test_transfer_to_unknown_host_rejected():
    sim = Simulator()
    net = make_net(sim, hosts=("a",))
    with pytest.raises(KeyError):
        net.transfer("a", "ghost", 100)


def test_transfer_from_unknown_host_rejected():
    sim = Simulator()
    net = make_net(sim, hosts=("a",))
    with pytest.raises(KeyError):
        net.transfer("ghost", "a", 100)


def test_message_to_self_rejected():
    sim = Simulator()
    net = make_net(sim)
    with pytest.raises(ValueError):
        net.transfer("a", "a", 100)


def test_zero_byte_message_rejected():
    sim = Simulator()
    net = make_net(sim)
    with pytest.raises(ValueError):
        net.transfer("a", "b", 0)


def test_concurrent_senders_serialize():
    """Two simultaneous senders: the wire carries one frame at a time."""
    sim = Simulator()
    net = make_net(sim, hosts=("a", "b", "c", "d"))
    done_times = {}

    def sender(sim, net, src, dst, tag):
        yield net.transfer(src, dst, 1400)
        done_times[tag] = sim.now

    sim.process(sender(sim, net, "a", "b", "first"))
    sim.process(sender(sim, net, "c", "d", "second"))
    sim.run()
    # Simultaneous start -> they collide at least once, then backoff
    # separates them; both complete, at different times.
    assert net.stats.counters["collisions"] >= 1
    assert len(done_times) == 2
    assert done_times["first"] != done_times["second"]
    single = net.spec.frame_time(1400)
    assert min(done_times.values()) > single  # paid contention overhead


def test_collision_counting_under_contention():
    sim = Simulator()
    hosts = [f"h{i}" for i in range(8)]
    net = make_net(sim, hosts=hosts)

    def sender(sim, net, src, dst):
        for _ in range(5):
            yield net.transfer(src, dst, 1400)

    for i in range(0, 8, 2):
        sim.process(sender(sim, net, hosts[i], hosts[i + 1]))
    sim.run()
    assert net.stats.counters["messages"] == 20
    assert net.collisions > 0


def test_sequential_transfers_no_collisions():
    sim = Simulator()
    net = make_net(sim)

    def sender(sim, net):
        for _ in range(10):
            yield net.transfer("a", "b", 1400)

    sim.run_until_complete(sim.process(sender(sim, net)))
    assert net.collisions == 0
    assert net.stats.counters["frames"] == 10


def test_effective_bandwidth_near_nominal_when_uncontended():
    """A single bulk sender should reach close to the raw 10 Mbit/s."""
    sim = Simulator()
    net = make_net(sim)
    total = 100 * PAGE_SIZE

    def sender(sim, net):
        for _ in range(100):
            yield net.transfer("a", "b", PAGE_SIZE)

    sim.run_until_complete(sim.process(sender(sim, net)))
    goodput = total / sim.now
    nominal = net.spec.bandwidth
    assert goodput > 0.75 * nominal


def test_heavy_contention_collapses_goodput():
    """§4.6: many contending stations crush effective bandwidth."""
    sim = Simulator()
    pairs = 10
    hosts = [f"h{i}" for i in range(2 * pairs)]
    net = make_net(sim, hosts=hosts)
    messages_per_sender = 20

    def sender(sim, net, src, dst):
        for _ in range(messages_per_sender):
            yield net.transfer(src, dst, 1400)

    procs = [
        sim.process(sender(sim, net, hosts[2 * i], hosts[2 * i + 1]))
        for i in range(pairs)
    ]
    for p in procs:
        sim.run_until_complete(p)
    goodput = (pairs * messages_per_sender * 1400) / sim.now
    # Effective bandwidth is well below nominal under heavy contention.
    assert goodput < 0.8 * net.spec.bandwidth
    assert net.collisions > pairs


def test_utilization_tracked():
    sim = Simulator()
    net = make_net(sim)
    run_transfer(sim, net, "a", "b", 1400)
    assert 0.0 < net.stats.utilization() <= 1.0


def test_detach_host():
    sim = Simulator()
    net = make_net(sim)
    assert net.is_attached("b")
    net.detach("b")
    assert not net.is_attached("b")
    with pytest.raises(KeyError):
        net.transfer("a", "b", 100)


def test_message_latency_stats():
    sim = Simulator()
    net = make_net(sim)
    run_transfer(sim, net, "a", "b", 1400)
    assert net.stats.message_latency.count == 1
    assert net.stats.message_latency.mean > 0
