"""Discrete-event simulation kernel used by every substrate model."""

from .core import (
    NULL_SPAN,
    NULL_TRACER,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    NullSpan,
    NullTracer,
    Process,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
)
from .monitor import Counter, Tally, TimeWeighted, UtilizationTracker
from .resources import Container, Resource, Store
from .rng import RngRegistry

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "StopSimulation",
    "NullSpan",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "Resource",
    "Store",
    "Container",
    "RngRegistry",
    "Counter",
    "Tally",
    "TimeWeighted",
    "UtilizationTracker",
]
