"""Worker-side execution of a :class:`RunSpec`.

:func:`execute_spec` is the function the process pool ships specs to:
it rebuilds the cluster, applies hooks and machine attributes, runs the
workload, stamps provenance metadata on the report, and applies the
spec's extractors.  It is also the serial fast path — the runner calls
it inline when ``jobs == 1``, so serial and parallel execution share
one code path by construction.

:func:`execute_chunk` wraps it for batched submission: the runner ships
a handful of chunks per campaign instead of one pool task per spec, so
a 500-cell matrix pays a few pickle/dispatch round-trips rather than
500.  :func:`prime_shared_tables` warms the read-only codec tables —
called in the parent before the pool forks, the tables land in
copy-on-write pages every worker shares; it doubles as the pool
initializer so spawn-based platforms build them once per worker
instead of once per spec.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .registry import make_hook, make_workload, run_extractors
from .spec import RunResult, RunSpec

__all__ = [
    "execute_spec",
    "execute_chunk",
    "prime_shared_tables",
    "resolve_build_kwargs",
    "build_meta",
]

#: Values stored verbatim in report.meta; everything else is repr()d.
_PLAIN_TYPES = (int, float, str, bool, type(None))


def resolve_build_kwargs(spec: RunSpec) -> Dict[str, Any]:
    """Resolve a spec into :func:`build_cluster` keyword arguments.

    Starts from the paper configuration for the spec's policy (when one
    exists), layers the overrides, and resolves registry-name stand-ins
    (a string ``replacement``) into objects.
    """
    from ..experiments.harness import PAPER_CONFIGS

    kwargs = dict(PAPER_CONFIGS.get(spec.policy, {"policy": spec.policy}))
    overrides = dict(spec.overrides)
    replacement = overrides.get("replacement")
    if isinstance(replacement, str):
        from ..vm.replacement import make_replacement

        overrides["replacement"] = make_replacement(replacement)
    kwargs.update(overrides)
    kwargs.setdefault("seed", spec.seed)
    return kwargs


def build_meta(
    policy: str,
    seed: int,
    overrides: Dict[str, Any],
    workload_name: str,
) -> Dict[str, Any]:
    """Provenance dict stamped on every CompletionReport.

    Shared between the runner path and the legacy ``run_policy`` path so
    serial and parallel runs of the same cell produce identical reports.
    """
    return {
        "workload": workload_name,
        "policy": policy,
        "seed": seed,
        "overrides": {
            key: value if isinstance(value, _PLAIN_TYPES) else repr(value)
            for key, value in sorted(overrides.items())
        },
    }


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one spec to completion (the process-pool entry point)."""
    from ..core.builder import build_cluster

    kwargs = resolve_build_kwargs(spec)
    cluster = build_cluster(**kwargs)
    for name, value in spec.machine_attrs:
        if not hasattr(cluster.machine, name):
            raise AttributeError(f"machine has no attribute {name!r}")
        setattr(cluster.machine, name, value)
    state: Optional[Any] = None
    if spec.hook is not None:
        state = make_hook(spec.hook, dict(spec.hook_kwargs))(cluster)
    workload = make_workload(spec.workload, dict(spec.workload_kwargs))
    report = cluster.run(workload)
    health = report.meta.get("health")
    report.meta = build_meta(
        spec.policy, kwargs.get("seed", 0), dict(spec.overrides), workload.name
    )
    # Full cluster telemetry rides with the report, so cached results and
    # parallel workers hand back the same observability payload.
    report.meta["metrics"] = cluster.metrics.snapshot()
    if health is not None:
        # Cluster.run stamped the health digest before meta was rebuilt;
        # it must survive the process pool and the result cache too.
        report.meta["health"] = health
    extras = run_extractors(spec.extract, cluster, report, state)
    return RunResult(spec=spec, report=report, extras=extras)


def execute_chunk(specs: Sequence[RunSpec]) -> List[RunResult]:
    """Run a batch of specs in order (the chunked pool entry point)."""
    return [execute_spec(spec) for spec in specs]


def prime_shared_tables() -> None:
    """Build the read-only codec tables ahead of worker fan-out.

    Safe to call repeatedly; each table is built at most once per
    process.
    """
    from ..core.policies.gf256 import prime_tables

    prime_tables()
