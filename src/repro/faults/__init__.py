"""Fault injection: chaos for the remote memory pager.

The paper's claim is *reliability at low cost* (§2.2); this package
supplies the failure modes to test it against — an unreliable-network
decorator, at-rest page corruption, and composable timed fault campaigns
with an end-to-end integrity invariant checker.  See DESIGN.md "Fault
model" for which faults the paper covers and which this reproduction
extends.
"""

from .integrity import CorruptionInjector, IntegrityReport, check_page_integrity
from .network import CorruptedDelivery, UnreliableNetwork
from .plan import ChaosController, FaultPlan

__all__ = [
    "ChaosController",
    "CorruptedDelivery",
    "CorruptionInjector",
    "FaultPlan",
    "IntegrityReport",
    "UnreliableNetwork",
    "check_page_integrity",
]
