"""Unit tests for the switched network, protocol stack, and traffic."""

import pytest

from repro.config import (
    PAGE_SIZE,
    ProtocolSpec,
    SwitchedNetworkSpec,
    fast_network,
)
from repro.sim import RngRegistry, Simulator
from repro.net import (
    EthernetCsmaCd,
    PoissonTrafficSource,
    ProtocolStack,
    SwitchedNetwork,
    attach_background_load,
)


def run_transfer(sim, net, src, dst, nbytes):
    def driver(sim, net):
        yield net.transfer(src, dst, nbytes)
        return sim.now

    return sim.run_until_complete(sim.process(driver(sim, net)))


# -------------------------------------------------------- switched network
def test_switched_page_latency_scales_with_bandwidth():
    times = {}
    for factor in (1, 10):
        sim = Simulator()
        net = SwitchedNetwork(sim, spec=fast_network(factor))
        net.attach("a")
        net.attach("b")
        times[factor] = run_transfer(sim, net, "a", "b", PAGE_SIZE)
    # 10x bandwidth: close to 10x lower serialisation-dominated latency.
    ratio = times[1] / times[10]
    assert 7.0 < ratio <= 10.5


def test_switched_no_collisions_concurrent_disjoint_pairs():
    sim = Simulator()
    net = SwitchedNetwork(sim)
    for host in ("a", "b", "c", "d"):
        net.attach(host)
    done = {}

    def sender(sim, net, src, dst):
        yield net.transfer(src, dst, 14600)
        done[src] = sim.now

    sim.process(sender(sim, net, "a", "b"))
    sim.process(sender(sim, net, "c", "d"))
    sim.run()
    # Disjoint pairs proceed fully in parallel: identical finish times.
    assert done["a"] == pytest.approx(done["c"])


def test_switched_same_uplink_serializes():
    sim = Simulator()
    net = SwitchedNetwork(sim)
    for host in ("a", "b", "c"):
        net.attach(host)
    done = []

    def sender(sim, net, dst):
        yield net.transfer("a", dst, 14600)
        done.append(sim.now)

    sim.process(sender(sim, net, "b"))
    sim.process(sender(sim, net, "c"))
    sim.run()
    assert len(done) == 2
    # Second message waits for the first's uplink serialisation.
    assert max(done) >= 2 * min(d for d in done) * 0.8


def test_switched_unknown_host_rejected():
    sim = Simulator()
    net = SwitchedNetwork(sim)
    net.attach("a")
    with pytest.raises(KeyError):
        net.transfer("a", "ghost", 10)


def test_fast_network_validation():
    with pytest.raises(ValueError):
        fast_network(0)


def test_switched_spec_validation():
    with pytest.raises(ValueError):
        SwitchedNetworkSpec(bandwidth=0)


# --------------------------------------------------------- protocol stack
def make_stack(sim, hosts=("client", "server")):
    net = EthernetCsmaCd(sim, rngs=RngRegistry(seed=5))
    for host in hosts:
        net.attach(host)
    return ProtocolStack(net)


def test_fetch_page_latency_matches_paper():
    """§4.4: one page transfer is ~11 ms = 1.6 protocol + ~9.6 wire."""
    sim = Simulator()
    stack = make_stack(sim)

    def driver(stack):
        yield from stack.fetch_page("client", "server", PAGE_SIZE)
        return stack.sim.now

    elapsed = sim.run_until_complete(sim.process(driver(stack)))
    assert 0.0085 < elapsed < 0.013


def test_page_transfer_counted():
    sim = Simulator()
    stack = make_stack(sim)

    def driver(stack):
        yield from stack.send_page("client", "server", PAGE_SIZE)

    sim.run_until_complete(sim.process(driver(stack)))
    assert stack.counters["page_transfers"] == 1


def test_protocol_cpu_charged_to_both_endpoints():
    sim = Simulator()
    stack = make_stack(sim)

    def driver(stack):
        yield from stack.send_page("client", "server", PAGE_SIZE)

    sim.run_until_complete(sim.process(driver(stack)))
    per_page = stack.spec.per_page_cpu
    assert stack.cpu_account("client").busy_seconds == pytest.approx(per_page / 2)
    assert stack.cpu_account("server").busy_seconds == pytest.approx(per_page / 2)


def test_header_overhead_added():
    sim = Simulator()
    stack = make_stack(sim)

    def driver(stack):
        yield from stack.send("client", "server", 14600)

    sim.run_until_complete(sim.process(driver(stack)))
    # 14600 payload at 1460/segment -> 10 segments -> +400 header bytes
    assert stack.network.stats.counters["bytes"] == 14600 + 10 * 40


def test_control_message_pays_no_page_cpu():
    sim = Simulator()
    stack = make_stack(sim)

    def driver(stack):
        yield from stack.send("client", "server", 64)

    sim.run_until_complete(sim.process(driver(stack)))
    assert stack.counters["page_transfers"] == 0
    assert stack.cpu_account("client").busy_seconds == 0.0


def test_cpu_account_utilization():
    from repro.net import CpuAccount

    account = CpuAccount("host")
    account.charge(2.0)
    assert account.utilization(10.0) == pytest.approx(0.2)
    assert account.utilization(0.0) == 0.0
    with pytest.raises(ValueError):
        account.charge(-1.0)


# ---------------------------------------------------------------- traffic
def test_traffic_source_injects_messages():
    sim = Simulator()
    net = EthernetCsmaCd(sim, rngs=RngRegistry(seed=9))
    source = PoissonTrafficSource(
        net, "src", "dst", offered_load=0.5, rng=RngRegistry(seed=2).stream("t")
    )
    sim.run(until=1.0)
    # At 50% of 10 Mbit/s with 1460 B messages: ~428 msgs/s expected.
    assert 200 < source.sent < 700


def test_traffic_source_stop():
    sim = Simulator()
    net = EthernetCsmaCd(sim, rngs=RngRegistry(seed=9))
    source = PoissonTrafficSource(
        net, "src", "dst", offered_load=0.5, rng=RngRegistry(seed=2).stream("t")
    )
    sim.run(until=0.5)
    sent_at_stop = source.sent
    source.stop()
    sim.run(until=1.5)
    assert source.sent == sent_at_stop


def test_attach_background_load_creates_sources():
    sim = Simulator()
    net = EthernetCsmaCd(sim, rngs=RngRegistry(seed=9))
    sources = attach_background_load(net, total_load=0.4, n_sources=4)
    assert len(sources) == 4
    assert all(net.is_attached(s.src) for s in sources)
    sim.run(until=0.2)
    assert sum(s.sent for s in sources) > 0


def test_background_load_slows_foreground_transfer():
    def page_time(load):
        sim = Simulator()
        net = EthernetCsmaCd(sim, rngs=RngRegistry(seed=9))
        net.attach("client")
        net.attach("server")
        if load:
            attach_background_load(net, total_load=load, n_sources=4)

        def driver(sim, net):
            start = sim.now
            for _ in range(20):
                yield net.transfer("client", "server", PAGE_SIZE)
            return sim.now - start

        return sim.run_until_complete(sim.process(driver(sim, net)))

    idle = page_time(0.0)
    loaded = page_time(0.6)
    assert loaded > 1.3 * idle


def test_traffic_validation():
    sim = Simulator()
    net = EthernetCsmaCd(sim)
    with pytest.raises(ValueError):
        PoissonTrafficSource(net, "s", "d", offered_load=0.0)
    with pytest.raises(ValueError):
        PoissonTrafficSource(net, "s", "d", offered_load=0.5, message_bytes=0)
    with pytest.raises(ValueError):
        attach_background_load(net, total_load=0.5, n_sources=0)


def test_compression_shrinks_wire_bytes():
    from dataclasses import replace

    from repro.config import TCP_IP_1996
    from repro.units import milliseconds

    sim = Simulator()
    net = EthernetCsmaCd(sim, rngs=RngRegistry(seed=5))
    net.attach("client")
    net.attach("server")
    spec = replace(TCP_IP_1996, compression_ratio=2.0,
                   compression_cpu=milliseconds(0.8))
    stack = ProtocolStack(net, spec=spec)

    def driver(stack):
        yield from stack.send_page("client", "server", PAGE_SIZE)

    sim.run_until_complete(sim.process(driver(stack)))
    # Half the payload on the wire (plus headers), one compressed page.
    assert stack.network.stats.counters["bytes"] < PAGE_SIZE * 0.6
    assert stack.counters["compressed_pages"] == 1
    # CPU charged: protocol + compress + decompress, split across ends.
    expected = (spec.per_page_cpu + 2 * spec.compression_cpu) / 2
    assert stack.cpu_account("client").busy_seconds == pytest.approx(expected)


def test_compression_validation():
    from repro.config import ProtocolSpec

    with pytest.raises(ValueError):
        ProtocolSpec(compression_ratio=0.5)
    with pytest.raises(ValueError):
        ProtocolSpec(compression_cpu=-1)
