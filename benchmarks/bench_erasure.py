"""PR 9 erasure benchmark: codec A/B, fan-out latency, resilience gates.

Grown from the PR 8 record (redundancy spectrum + codec throughput)
into the vectorized-datapath acceptance harness.  One JSON summary
(``BENCH_pr9.json``) with five sections:

* **spectrum** — the PR 8 fault-free policy sweep, unchanged: ec-4-2
  must ship fewer page-equivalents than mirroring while tolerating two
  concurrent crashes.
* **codec_ab** — three GF(256) engines timed back-to-back on the same
  8 KB ec-4-2 stripes, all outputs byte-compared:

  - *reference*: per-byte pure-python ``gf_mul`` loops — the honest
    "pure python" baseline the 10x claim is measured against;
  - *python*: the shipped fallback engine (per-scalar
    ``bytes.translate`` tables — already C-backed inner loops);
  - *numpy*: the packed-lane streaming kernel
    (``encode_many``/``data_from_many``).

  The gated ratio (``codec_ab.speedup``, enforced >= 10x here and by
  ``trajectory.py --check``) is numpy-streaming vs the reference
  engine.  The numpy-vs-translate ratio rides along ungated as
  ``translate_ratio``: a single-core numpy gather moves ~1 byte/ns,
  which bounds that win near 5x — see benchmarks/README.md.
* **paper_scale** — ``repro spectrum --paper-scale`` (GAUSS on the
  32 MB Alpha, switched network, telemetry on): per-policy pagein
  latency percentiles plus ``latency_ratio`` = ec-4-2 mean pagein
  latency over mirroring's (checked <= 1.5; the concurrent fragment
  fan-out typically lands it *below* 1.0).
* **resilience** — ec-4-2 campaign verdicts at the heavy and
  correlated fault levels, sync and pipelined: all must stay CLEAN.
* **compiled_identity** — one content-mode EC run executed compiled
  and interpreted; reports (etime, faults) and full metrics snapshots
  must match exactly.

Run as a script for the JSON record, ``--check`` to enforce all of the
above (CI's bench-regression job does both)::

    PYTHONPATH=src python benchmarks/bench_erasure.py --out BENCH_pr9.json --check

or under pytest for a threshold-free smoke check.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for _path in (_HERE, _SRC):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.core.policies.gf256 import (  # noqa: E402
    ReedSolomon,
    _encode_rows,
    _reconstruction_rows,
    codec_backend,
    gf_mul,
    join_fragments,
    set_codec_backend,
    split_page,
)
from repro.experiments.erasure import run_spectrum  # noqa: E402
from repro.experiments.resilience import run_resilience  # noqa: E402
from repro.vm.page import page_bytes  # noqa: E402

PAGE = 8192

#: codec_ab acceptance floor: numpy streaming vs the per-byte
#: pure-python reference codec, encode+decode combined.
CODEC_SPEEDUP_FLOOR = 10.0

#: paper_scale acceptance ceiling: ec-4-2 mean pagein latency over
#: mirroring's on the switched network.
LATENCY_RATIO_CEILING = 1.5


# --------------------------------------------------------------------------
# Codec A/B: reference (per-byte python) vs translate engine vs numpy.
# --------------------------------------------------------------------------

def _reference_combine(fragments, rows):
    """Per-byte pure-python GF(256) matrix apply — the honest baseline.

    Every byte goes through a python-level ``gf_mul`` call and a
    python-level XOR; this is what "pure python Reed-Solomon" means
    before any table/translate/vector tricks.
    """
    width = len(fragments[0])
    out = []
    for row in rows:
        acc = bytearray(width)
        for coeff, frag in zip(row, fragments):
            if not coeff:
                continue
            for i, byte in enumerate(frag):
                acc[i] ^= gf_mul(coeff, byte)
        out.append(bytes(acc))
    return out


def _worst_case_survivors(k, m, data, parity):
    """m data fragments lost; every parity position joins the decode."""
    if m < k:
        return {k + j: parity[j] for j in range(m)} | {
            i: data[i] for i in range(k - m)
        }
    return {k + j: parity[j] for j in range(m)}


def measure_codec_ab(k: int = 4, m: int = 2, pages: int = 64) -> dict:
    """Three engines, same stripes, byte-compared; microseconds/page each."""
    rs = ReedSolomon(k, m)
    fragment_size = -(-PAGE // k)
    stripes = [
        split_page(page_bytes(page_id, 1, PAGE), k, fragment_size)
        for page_id in range(pages)
    ]

    # Reference engine: per-byte python loops over the same matrices the
    # real codec uses, so outputs are comparable bit-for-bit.
    encode_rows = _encode_rows(k, m)
    _reference_combine(stripes[0], encode_rows)  # warm gf tables
    start = perf_counter()
    ref_parities = [_reference_combine(data, encode_rows) for data in stripes]
    ref_encode = perf_counter() - start

    survivors = [
        _worst_case_survivors(k, m, data, parity)
        for data, parity in zip(stripes, ref_parities)
    ]
    src = tuple(sorted(survivors[0], key=lambda i: (i >= k, i))[:k])
    todo = tuple(i for i in range(k) if i not in survivors[0])
    recon_rows = _reconstruction_rows(k, m, src, todo)
    start = perf_counter()
    ref_decoded = []
    for avail in survivors:
        rebuilt = _reference_combine([avail[i] for i in src], recon_rows)
        frags = dict(avail)
        frags.update(zip(todo, rebuilt))
        ref_decoded.append([frags[i] for i in range(k)])
    ref_decode = perf_counter() - start

    # Translate engine (the shipped no-numpy fallback), per page.
    previous = set_codec_backend("python")
    try:
        rs.encode(stripes[0])  # warm per-scalar translate tables
        rs.data_from(survivors[0])
        start = perf_counter()
        py_parities = [rs.encode(data) for data in stripes]
        py_encode = perf_counter() - start
        start = perf_counter()
        py_decoded = [rs.data_from(avail) for avail in survivors]
        py_decode = perf_counter() - start
    finally:
        set_codec_backend(previous)

    # Numpy streaming kernel (when available), whole batch per call.
    numpy_available = codec_backend() == "numpy"
    if numpy_available:
        rs.encode_many(stripes[:2])  # warm packed-lane tables + scratch
        rs.data_from_many(survivors[:2])
        start = perf_counter()
        np_parities = rs.encode_many(stripes)
        np_encode = perf_counter() - start
        start = perf_counter()
        np_decoded = rs.data_from_many(survivors)
        np_decode = perf_counter() - start
    else:  # REPRO_NO_NUMPY_GF / no numpy: the fallback *is* the fast engine
        np_parities, np_decoded = py_parities, py_decoded
        np_encode, np_decode = py_encode, py_decode

    identical = (
        ref_parities == py_parities == np_parities
        and ref_decoded == py_decoded == np_decoded
    )
    for page_id, data in enumerate(np_decoded):
        assert join_fragments(data, PAGE) == page_bytes(page_id, 1, PAGE)

    us = lambda seconds: round(seconds / pages * 1e6, 2)  # noqa: E731
    return {
        "k": k,
        "m": m,
        "pages": pages,
        "page_size": PAGE,
        "backend": codec_backend(),
        "engines_byte_identical": identical,
        "reference_encode_us_per_page": us(ref_encode),
        "reference_decode_us_per_page": us(ref_decode),
        "python_encode_us_per_page": us(py_encode),
        "python_decode_us_per_page": us(py_decode),
        "numpy_encode_us_per_page": us(np_encode),
        "numpy_decode_us_per_page": us(np_decode),
        # Gated (trajectory.py): fast engine vs the per-byte reference.
        "speedup": round(
            (ref_encode + ref_decode) / (np_encode + np_decode), 1
        ),
        # Ungated context: vectorized vs the C-backed translate fallback.
        "translate_ratio": round(
            (py_encode + py_decode) / (np_encode + np_decode), 2
        ),
    }


# --------------------------------------------------------------------------
# Paper-scale latency: fragment fan-out vs whole-page policies.
# --------------------------------------------------------------------------

def measure_paper_scale() -> dict:
    """GAUSS/32 MB-Alpha/switched-net sweep with pagein percentiles."""
    results = run_spectrum(
        policies=("no-reliability", "mirroring", "ec-2-1", "ec-4-2"),
        paper_scale=True,
    )
    record = {}
    for policy, cell in results.items():
        latency = cell.get("pagein_latency") or {}
        record[policy] = {
            "transfer_overhead": cell["transfer_overhead"],
            "etime": round(cell["etime"], 4),
            "pagein_count": latency.get("count", 0),
            "pagein_p50_ms": latency.get("p50_ms", 0.0),
            "pagein_p95_ms": latency.get("p95_ms", 0.0),
            "pagein_p99_ms": latency.get("p99_ms", 0.0),
            "pagein_mean_ms": latency.get("mean_ms", 0.0),
        }
    ec_mean = record["ec-4-2"]["pagein_mean_ms"]
    mirror_mean = record["mirroring"]["pagein_mean_ms"]
    record["latency_ratio"] = (
        round(ec_mean / mirror_mean, 3) if mirror_mean else 0.0
    )
    return record


# --------------------------------------------------------------------------
# Resilience + determinism gates for the concurrent datapath.
# --------------------------------------------------------------------------

def measure_resilience() -> dict:
    """ec-4-2 campaign verdicts, heavy + correlated, sync + pipelined."""
    record = {}
    for mode, pipelined in (("sync", False), ("pipelined", True)):
        sweep = run_resilience(
            policies=("ec-4-2",),
            levels=("heavy", "correlated"),
            pipelined=pipelined,
        )
        record[mode] = {
            level: cells["ec-4-2"]["extras"]["verdict"]
            for level, cells in sweep.items()
        }
    return record


def measure_compiled_identity() -> dict:
    """One EC run compiled and interpreted: reports must match exactly."""
    from repro.config import MachineSpec
    from repro.core.builder import build_cluster
    from repro.workloads import SequentialScan

    small = MachineSpec(
        name="bench-small",
        ram_bytes=2 * 1024 * 1024,
        kernel_resident_bytes=1 * 1024 * 1024,
        page_size=8192,
    )
    snapshots = {}
    for compiled in (True, False):
        cluster = build_cluster(
            policy="ec-4-2",
            n_servers=12,
            machine_spec=small,
            content_mode=True,
            seed=3,
            server_capacity_pages=600,
            compile_schedules=compiled,
        )
        report = cluster.run(SequentialScan(n_pages=300, passes=2, write=True))
        snapshots[compiled] = (
            round(report.etime, 9),
            report.faults,
            cluster.metrics.snapshot(),
        )
    return {
        "etime": snapshots[True][0],
        "faults": snapshots[True][1],
        "identical": snapshots[True] == snapshots[False],
    }


# --------------------------------------------------------------------------
# Acceptance checks.
# --------------------------------------------------------------------------

def check_spectrum(spectrum: dict) -> list:
    """PR 8 acceptance claims; returns failure strings (empty = pass)."""
    failures = []
    ec = spectrum["ec-4-2"]
    mirror = spectrum["mirroring"]
    if not ec["transfers"] < mirror["transfers"]:
        failures.append(
            f"ec-4-2 page-equivalent transfers ({ec['transfers']}) not "
            f"below mirroring ({mirror['transfers']})"
        )
    if not (ec["crashes_tolerated"] or 0) >= 2:
        failures.append(
            f"ec-4-2 must tolerate >= 2 crashes, got {ec['crashes_tolerated']}"
        )
    if not (mirror["crashes_tolerated"] or 0) == 1:
        failures.append(
            f"mirroring tolerance changed: {mirror['crashes_tolerated']}"
        )
    return failures


def check_record(record: dict) -> list:
    """The full PR 9 acceptance list; returns failure strings."""
    failures = check_spectrum(record["spectrum"])
    codec = record["codec_ab"]
    if not codec["engines_byte_identical"]:
        failures.append("codec engines disagree byte-for-byte")
    if codec["speedup"] < CODEC_SPEEDUP_FLOOR:
        failures.append(
            f"codec speedup vs per-byte reference = {codec['speedup']}x, "
            f"need >= {CODEC_SPEEDUP_FLOOR}x"
        )
    ratio = record["paper_scale"]["latency_ratio"]
    if not 0 < ratio <= LATENCY_RATIO_CEILING:
        failures.append(
            f"ec-4-2 mean pagein latency is {ratio}x mirroring's, "
            f"need (0, {LATENCY_RATIO_CEILING}]"
        )
    for mode, verdicts in record["resilience"].items():
        for level, verdict in verdicts.items():
            if verdict != "CLEAN":
                failures.append(
                    f"ec-4-2 {mode}/{level} campaign verdict {verdict}, "
                    "need CLEAN"
                )
    if not record["compiled_identity"]["identical"]:
        failures.append("compiled and interpreted EC runs diverged")
    return failures


def run_all() -> dict:
    spectrum = run_spectrum()
    return {
        "spectrum": {
            policy: {
                "transfers": cell["transfers"],
                "transfer_overhead": cell["transfer_overhead"],
                "crashes_tolerated": cell["crashes_tolerated"],
                "etime": round(cell["etime"], 4),
                "n_servers": cell["n_servers"],
            }
            for policy, cell in spectrum.items()
        },
        "codec_ab": measure_codec_ab(),
        "paper_scale": measure_paper_scale(),
        "resilience": measure_resilience(),
        "compiled_identity": measure_compiled_identity(),
    }


# --------------------------------------------------------------------------
# pytest entry point (threshold-free smoke).
# --------------------------------------------------------------------------

def test_erasure_spectrum(benchmark, once):
    record = once(benchmark, run_all)
    print("\n" + json.dumps(
        {key: record[key] for key in ("spectrum", "codec_ab")}, indent=2
    ))
    failures = check_record(record)
    assert not failures, failures


# --------------------------------------------------------------------------
# Script entry point (JSON record + enforced checks).
# --------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="enforce the PR 9 acceptance claims")
    parser.add_argument("--out", default="-", metavar="PATH",
                        help="write the JSON record here ('-' = stdout)")
    args = parser.parse_args(argv)

    record = run_all()
    payload = json.dumps(record, indent=2, sort_keys=True)
    if args.out == "-":
        print(payload)
    else:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
        print(f"wrote {args.out}")

    if args.check:
        failures = check_record(record)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        codec = record["codec_ab"]
        print(
            "PR 9 acceptance holds: codec "
            f"{codec['speedup']}x vs per-byte reference "
            f"({codec['translate_ratio']}x vs translate fallback), "
            f"ec-4-2 pagein latency "
            f"{record['paper_scale']['latency_ratio']}x mirroring, "
            "campaigns CLEAN, compiled == interpreted"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
