"""Cluster model: workstations, the server registry, idle-memory traces."""

from .idle_trace import IdleMemoryTrace
from .load import CpuBoundLoop, EditorSession, MemorySurge
from .registry import ServerRegistry
from .workstation import Workstation

__all__ = [
    "Workstation",
    "ServerRegistry",
    "IdleMemoryTrace",
    "EditorSession",
    "CpuBoundLoop",
    "MemorySurge",
]
