"""Write-behind pageout queue: coalescing, clustered batch drain.

The synchronous datapath serialises every pageout through the paging
daemon: the evicting process waits out protocol CPU + wire time + server
store before its frame is reusable.  :class:`PageoutQueue` decouples the
two ends (the asynchronous swap-out of Zhong et al., OSF/1's pageout
clustering):

* ``enqueue`` completes in zero simulated time (after backlog
  admission); the page is *committed* — the pager's checksum ledger
  already records it, and a pagein finding it queued is served from the
  queue (a write-back hit) without touching the network.
* A page re-dirtied while queued is **coalesced**: the queued entry's
  contents are replaced in place and only the newest version is ever
  transmitted — one transfer saved, and (for parity logging) one parity
  XOR never happens, because the superseded version never reaches the
  policy.
* A single **drainer** process transmits entries in FIFO batches of up
  to ``window`` pages through the policy, bracketed by the protocol
  stack's clustered-batch framing (head page pays full protocol CPU,
  the rest pay ``batch_cpu_fraction`` of it).  One drainer means policy
  state (round-robin order, the open parity group) never interleaves —
  the same invariant the synchronous daemon's capacity-1 resource
  provided, relocated rather than relaxed.

Failure semantics mirror the synchronous path *per entry*: no server
room or a request timeout routes that entry to the local disk; a crash
mid-drain runs the pager's single-flight recovery and retries.  Entries
are never dropped — the machine's end-of-run drain barrier
(:meth:`wait_idle`) holds completion until the queue is empty.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from ..errors import RequestTimeout, ServerUnavailable, SwapSpaceExhausted
from ..log import get_logger
from ..sim import Counter, Tally

__all__ = ["PageoutQueue"]

log = get_logger(__name__)


class _Entry:
    __slots__ = ("page_id", "contents", "sending", "enqueued_at")

    def __init__(self, page_id: int, contents: Optional[bytes], enqueued_at: float):
        self.page_id = page_id
        self.contents = contents
        self.sending = False
        self.enqueued_at = enqueued_at


class PageoutQueue:
    """Bounded write-behind queue with a single batch drainer."""

    def __init__(
        self,
        pager,
        spec,
        counters: Counter,
        depth: Tally,
        queue_delay: Optional[Tally] = None,
    ):
        self.pager = pager
        self.sim = pager.sim
        self.spec = spec
        self.counters = counters
        #: Queue-depth distribution, observed at every enqueue.
        self.depth = depth
        #: Seconds between enqueue and transmission start, per entry.
        self.queue_delay = queue_delay if queue_delay is not None else Tally()
        self._queued: "OrderedDict[int, _Entry]" = OrderedDict()
        self._sending: Dict[int, _Entry] = {}
        self._space_waiters: List = []
        self._idle_waiters: List = []
        self._wake = None
        self._drainer = None

    # ------------------------------------------------------------ producers
    def enqueue(self, page_id: int, contents: Optional[bytes]):
        """Generator: admit one pageout; returns once queued (not sent).

        Yields only when the backlog is full (back-pressure: the evicting
        process waits for the drainer to make room, bounding the window
        between 'the VM thinks this page is safe' and 'it actually is').
        """
        entry = self._queued.get(page_id)
        if entry is not None:
            # Coalesce: the queued (not yet transmitted) version is dead;
            # only the newest bytes ever cross the wire.
            entry.contents = contents
            self.counters.add("coalesced")
            self.sim.tracer.emit("pipeline", "coalesce", page_id=page_id)
            return
        while len(self._queued) >= self.spec.max_backlog:
            self.counters.add("backlog_stalls")
            waiter = self.sim.event()
            self._space_waiters.append(waiter)
            yield waiter
        self._queued[page_id] = _Entry(page_id, contents, self.sim.now)
        self.counters.add("enqueued")
        self.depth.observe(len(self._queued) + len(self._sending))
        if self._drainer is None or not self._drainer.is_alive:
            self._drainer = self.sim.process(self._drain_loop(), name="pageout-drainer")
        elif self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def lookup(self, page_id: int) -> Optional[_Entry]:
        """The newest pending entry for ``page_id`` (queued wins over
        sending: a queued entry is by construction the later version)."""
        entry = self._queued.get(page_id)
        if entry is not None:
            return entry
        return self._sending.get(page_id)

    def release(self, page_id: int) -> None:
        """The page is dead: a queued entry need never be transmitted."""
        entry = self._queued.pop(page_id, None)
        if entry is not None:
            self.counters.add("released_queued")
            self._wake_producers()
            self._notify_if_idle()
        elif page_id in self._sending:
            # Mid-transmission; the send completes (an orphan store the
            # server eventually reclaims) — matching the synchronous
            # path, where release during an in-flight pageout is moot
            # because the daemon serialised them.
            self.counters.add("released_while_sending")

    @property
    def pending(self) -> int:
        return len(self._queued) + len(self._sending)

    def wait_idle(self):
        """Generator: block until every admitted entry has settled."""
        while self._queued or self._sending:
            waiter = self.sim.event()
            self._idle_waiters.append(waiter)
            yield waiter

    # -------------------------------------------------------------- drainer
    def _drain_loop(self):
        sim = self.sim
        pager = self.pager
        stack = pager.policy.stack
        while True:
            if not self._queued:
                self._notify_if_idle()
                self._wake = sim.event()
                yield self._wake
            # A zero-delay hop lets every producer scheduled at this same
            # instant finish enqueueing (a free-batch eviction admits 16
            # pages "at once") so batches actually fill to the window.
            yield sim.timeout(0.0)
            batch: List[_Entry] = []
            while self._queued and len(batch) < self.spec.window:
                page_id, entry = self._queued.popitem(last=False)
                entry.sending = True
                self._sending[page_id] = entry
                batch.append(entry)
            if not batch:
                continue
            self._wake_producers()
            self.counters.add("drain_batches")
            self.counters.add("drained_pages", len(batch))
            self.sim.tracer.emit("pipeline", "drain_batch", pages=len(batch))
            stack.begin_cluster(pager.policy.client_host)
            try:
                for entry in batch:
                    yield from self._transmit(entry)
            finally:
                stack.end_cluster()
                for entry in batch:
                    self._sending.pop(entry.page_id, None)
                self._notify_if_idle()

    def _transmit(self, entry: _Entry):
        """Generator: one entry through the policy, synchronous-path
        fallbacks intact (disk on no-room / path timeout; crash recovery
        inside ``_policy_pageout``)."""
        pager = self.pager
        sim = self.sim
        page_id = entry.page_id
        self.queue_delay.observe(sim.now - entry.enqueued_at)
        span = sim.tracer.span("pageout", page_id)
        span.phase("dispatch")
        try:
            if pager._network_degraded():
                span.phase("disk")
                yield from pager._disk_pageout(page_id, entry.contents)
                span.end("disk-fallback", reason="network-degraded")
                return
            start = sim.now
            try:
                yield from pager._policy_pageout(page_id, entry.contents, span=span)
            except (ServerUnavailable, SwapSpaceExhausted):
                span.phase("disk")
                yield from pager._disk_pageout(page_id, entry.contents)
                span.end("disk-fallback", reason="no-server-room")
                return
            except RequestTimeout as timeout:
                pager.counters.add("timeout_fallback_pageouts")
                sim.tracer.emit(
                    "pager", "pageout_timeout",
                    page_id=page_id, dst=timeout.dst, attempts=timeout.attempts,
                )
                span.phase("disk")
                yield from pager._disk_pageout(page_id, entry.contents)
                span.end("disk-fallback", reason="request-timeout")
                return
            span.phase("ack")
            pager._observe_transfer(sim.now - start)
            pager._on_disk.discard(page_id)
            pager._disk_contents.pop(page_id, None)
            span.end("ok")
        finally:
            span.end("error")  # no-op unless an exception escaped
            pager._pageout_settled(page_id, entry.contents)

    # ------------------------------------------------------------- plumbing
    def _wake_producers(self) -> None:
        waiters, self._space_waiters = self._space_waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()

    def _notify_if_idle(self) -> None:
        if self._queued or self._sending:
            return
        waiters, self._idle_waiters = self._idle_waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()
