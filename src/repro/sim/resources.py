"""Shared-resource primitives for simulation processes.

Three primitives cover every contention point in the models:

* :class:`Resource` — a counted resource (e.g. a disk arm, a CPU) with a
  FIFO wait queue; acquired with ``yield resource.acquire()`` and released
  with ``resource.release()``.
* :class:`Store` — an unbounded (or bounded) FIFO channel of Python
  objects; the backbone of every message queue between client and servers.
* :class:`Container` — a continuous quantity (e.g. free page frames) with
  blocking ``get`` and non-blocking ``put``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Event, SimulationError, Simulator

__all__ = ["Resource", "Store", "Container"]


class Resource:
    """A counted resource with FIFO granting.

    >>> sim = Simulator()
    >>> disk_arm = Resource(sim, capacity=1)
    >>> def use(sim, arm):
    ...     yield arm.acquire()
    ...     yield sim.timeout(1.0)
    ...     arm.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently-held units."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of processes waiting to acquire."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires when a unit is granted."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit; grants the longest-waiting acquirer, if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Store:
    """FIFO channel of items with blocking ``get`` and optional capacity.

    ``put`` blocks only when a finite ``capacity`` is set and reached.
    Items are handed to getters in arrival order; getters are served in
    request order.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()  # events carrying pending items

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Enqueue ``item``; the returned event fires once it is stored."""
        event = Event(self.sim)
        event._value = item  # stash the payload for deferred admission
        if self._getters:
            # Hand straight to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            event._value = None
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event._value = None
            event.succeed()
        else:
            self._putters.append(event)
        return event

    def get(self) -> Event:
        """Dequeue the oldest item; the returned event fires with it."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking get: return the oldest item or None if empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._admit_putter()
        return item

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            putter = self._putters.popleft()
            self._items.append(putter._value)
            putter._value = None
            putter.succeed()


class Container:
    """A continuous quantity with blocking ``get``.

    Used for pools such as free page frames on a memory server.  ``put``
    never blocks (level may not exceed ``capacity``); ``get`` blocks until
    the requested amount is available, serving waiters FIFO.
    """

    def __init__(self, sim: Simulator, capacity: float, init: float = 0.0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self._level = init
        self._getters: Deque[tuple] = deque()  # (amount, event)

    @property
    def level(self) -> float:
        """Current amount in the container."""
        return self._level

    def put(self, amount: float) -> None:
        """Add ``amount``; wakes waiting getters that can now be served."""
        if amount < 0:
            raise ValueError(f"negative put amount: {amount}")
        if self._level + amount > self.capacity + 1e-9:
            raise SimulationError(
                f"container overflow: {self._level} + {amount} > {self.capacity}"
            )
        self._level += amount
        while self._getters and self._getters[0][0] <= self._level:
            want, event = self._getters.popleft()
            self._level -= want
            event.succeed(want)

    def get(self, amount: float) -> Event:
        """Remove ``amount`` once available; FIFO among waiters."""
        if amount < 0:
            raise ValueError(f"negative get amount: {amount}")
        if amount > self.capacity:
            raise SimulationError(
                f"get({amount}) can never be satisfied (capacity {self.capacity})"
            )
        event = Event(self.sim)
        if not self._getters and amount <= self._level:
            self._level -= amount
            event.succeed(amount)
        else:
            self._getters.append((amount, event))
        return event

    def try_get(self, amount: float) -> bool:
        """Non-blocking get: take ``amount`` now or return False."""
        if not self._getters and amount <= self._level:
            self._level -= amount
            return True
        return False
