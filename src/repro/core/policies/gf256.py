"""GF(256) Reed–Solomon codec for the erasure-coded policies.

Deterministic and table-driven: fragments are plain ``bytes`` over the
field GF(2^8) under the AES/QR polynomial ``x^8 + x^4 + x^3 + x^2 + 1``
(0x11d); a generator-3 exp/log pair gives O(1) multiply and divide.

The code is *systematic* in Lagrange form (the scheme Hydra and Carbink
build on): an 8 KB page splits into ``k`` equal data fragments, each
treated as the evaluations of ``fragment_size`` independent degree-(k-1)
polynomials at the points ``x = 0 .. k-1``.  Parity fragments are the
same polynomials evaluated at ``x = k .. k+m-1``.  Any ``k`` of the
``k+m`` fragments re-interpolate the polynomials, hence the page —
that's the only algebra the policies need:

* ``encode(data_fragments)`` — evaluate at the parity points;
* ``reconstruct(available)`` — interpolate from any k points to whatever
  points are missing.

Both reduce to XOR-accumulating scalar-multiplied fragments.

Two interchangeable byte-identical engines do that accumulation:

* **python** — scalar multiplication of a whole fragment is a single
  ``bytes.translate`` with a per-scalar 256-entry table (one C-level
  pass per (fragment, scalar) pair, no per-byte python loop);
* **numpy** — a packed-lane kernel: output rows are processed in pairs,
  each input fragment viewed as little-endian uint16 byte pairs and
  gathered once through a 64K-entry table whose uint32 values hold
  ``c*a | c*b<<8`` for both rows' coefficients (two bytes × two rows
  per gathered element), XOR-accumulated in the packed domain and
  unpacked with strided views.  At 8 KB pages this is an order of
  magnitude faster than the translate loop
  (benchmarks/bench_erasure.py measures the exact ratio).

The numpy engine is auto-selected at import when numpy is available;
``REPRO_NO_NUMPY_GF=1`` forces the pure-python path (and the absence of
numpy degrades silently to it).  Because GF arithmetic is exact, the two
backends produce byte-identical fragments — the choice is invisible to
every simulated result (tests/faults/test_codec_backends.py pins this).

Coefficient rows are memoised at module level so every
:class:`ReedSolomon` instance in the process shares them: encode
matrices per ``(k, m)`` shape (a handful ever exist), reconstruction
rows per ``(k, m, survivors, targets)`` subset behind an LRU bound
(repeated degraded reads against the same crash pattern stop
re-deriving Lagrange rows).  :func:`codec_stats` exposes the cache
counters; instances additionally count their own deterministic hit/miss
stream into an optional ``stats`` Counter (the erasure policy wires its
``policy.*`` metrics counter in, so the cache's effectiveness lands in
every MetricsRegistry snapshot without breaking run-for-run
determinism — the per-instance stream depends only on the instance's
own call sequence, never on process-global cache state).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ...vm.page import xor_bytes

__all__ = [
    "ReedSolomon",
    "codec_backend",
    "codec_stats",
    "gf_mul",
    "gf_inv",
    "prime_tables",
    "scale_bytes",
    "set_codec_backend",
    "split_page",
    "join_fragments",
]

_GF_POLY = 0x11D

# exp table doubled so gf_mul can skip the mod-255 reduction.
GF_EXP = [0] * 512
GF_LOG = [0] * 256
_x = 1
for _i in range(255):
    GF_EXP[_i] = _x
    GF_LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= _GF_POLY
for _i in range(255, 512):
    GF_EXP[_i] = GF_EXP[_i - 255]
del _x, _i


def gf_mul(a: int, b: int) -> int:
    """Product in GF(256)."""
    if a == 0 or b == 0:
        return 0
    return GF_EXP[GF_LOG[a] + GF_LOG[b]]


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(256); ``a`` must be non-zero."""
    if a == 0:
        raise ZeroDivisionError("no inverse of 0 in GF(256)")
    return GF_EXP[255 - GF_LOG[a]]


# --------------------------------------------------------------------------
# Backend selection.
# --------------------------------------------------------------------------

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except Exception:  # numpy genuinely absent: degrade silently
    _np = None

import sys as _sys

#: The packed-lane kernel relies on little-endian uint16/uint32 views.
if _np is not None and _sys.byteorder != "little":  # pragma: no cover
    _np = None

#: Active engine name; start from the environment, fall back gracefully.
_BACKEND = "python" if (_np is None or os.environ.get("REPRO_NO_NUMPY_GF")) \
    else "numpy"

#: 256x256 GF(256) multiplication table for the numpy engine (lazy).
_NP_MUL = None


def codec_backend() -> str:
    """The active codec engine: ``"numpy"`` or ``"python"``."""
    return _BACKEND


def set_codec_backend(name: Optional[str]) -> str:
    """Select the codec engine; returns the previous one.

    ``"numpy"`` / ``"python"`` force an engine (raising if numpy is
    requested but unavailable); ``None`` restores the import-time
    auto-selection.  Benchmark A/B hygiene only — outputs are
    byte-identical either way.
    """
    global _BACKEND
    previous = _BACKEND
    if name is None:
        name = "python" if (_np is None or os.environ.get("REPRO_NO_NUMPY_GF")) \
            else "numpy"
    if name not in ("numpy", "python"):
        raise ValueError(f"unknown codec backend: {name!r}")
    if name == "numpy" and _np is None:
        raise RuntimeError("numpy backend requested but numpy is unavailable")
    _BACKEND = name
    return previous


def _np_mul_table():
    """The full GF(256) product table, built once per process."""
    global _NP_MUL
    if _NP_MUL is None:
        exp = _np.array(GF_EXP, dtype=_np.uint8)
        log = _np.array(GF_LOG, dtype=_np.int64)
        table = exp[log[:, None] + log[None, :]]
        table[0, :] = 0
        table[:, 0] = 0
        _NP_MUL = table
    return _NP_MUL


def prime_tables() -> None:
    """Materialise the lazy codec tables in *this* process.

    The parallel runner calls this in the parent before forking its
    worker pool: the 64 KB product table then lives in pages every
    worker shares copy-on-write (the tables are never written after
    construction), instead of each worker rebuilding it on first use.
    A no-op on the pure-python engine, whose log/exp tables are built
    at import.
    """
    if _BACKEND == "numpy":
        _np_mul_table()


#: (c1,) or (c1, c2) -> packed pair-multiply table, LRU-bounded.  Keyed
#: by the coefficient values alone, so every matrix sharing a column
#: pair shares the table.  Each uint32 table is 256 KB; the bound keeps
#: the working set a few MB.
_PAIR_TABLES: "OrderedDict[tuple, object]" = OrderedDict()
_PAIR_TABLES_MAX = 64


def _pair_table(col: tuple):
    """Packed multiply table for one or two coefficient lanes.

    Index = a little-endian byte pair ``(a, b)`` read as uint16; value =
    ``c1*a | c1*b << 8`` in the low lane and (for two-lane tables)
    ``c2*a | c2*b << 8`` in the high lane.  One gather through this
    table therefore advances *two adjacent bytes* of *every packed
    output row* at once — the numpy engine's whole trick.
    """
    table = _PAIR_TABLES.get(col)
    if table is not None:
        _PAIR_TABLES.move_to_end(col)
        return table
    mul = _np_mul_table()
    lanes = []
    for c in col:
        row = mul[c].astype(_np.uint16)
        # [b, a] grid raveled in C order == index (b << 8 | a).
        lanes.append((row[:, None] << 8) | row[None, :])
    if len(col) == 1:
        table = _np.ascontiguousarray(lanes[0].ravel())
    else:
        table = (lanes[0].ravel().astype(_np.uint32)
                 | (lanes[1].ravel().astype(_np.uint32) << 16))
    _PAIR_TABLES[col] = table
    if len(_PAIR_TABLES) > _PAIR_TABLES_MAX:
        _PAIR_TABLES.popitem(last=False)
    return table


#: scalar -> 256-byte translation table for whole-fragment multiply.
_MUL_TABLES: Dict[int, bytes] = {}


def _mul_table(c: int) -> bytes:
    table = _MUL_TABLES.get(c)
    if table is None:
        table = bytes(gf_mul(c, v) for v in range(256))
        _MUL_TABLES[c] = table
    return table


def scale_bytes(data: bytes, c: int) -> bytes:
    """``c * data`` element-wise in GF(256) (one C-level pass)."""
    if c == 0:
        return bytes(len(data))
    if c == 1:
        return data
    return data.translate(_mul_table(c))


def _combine(
    fragments: Sequence[bytes], coefficients: Sequence[int]
) -> bytes:
    """XOR-accumulate ``coefficients[i] * fragments[i]`` over GF(256)."""
    out: Optional[bytes] = None
    for fragment, c in zip(fragments, coefficients):
        if c == 0:
            continue
        term = scale_bytes(fragment, c)
        out = term if out is None else xor_bytes(out, term)
    if out is None:
        return bytes(len(fragments[0]))
    return out


def _combine_rows(
    fragments: Sequence[bytes],
    rows: Sequence[Sequence[int]],
) -> List[bytes]:
    """All row-combinations of ``fragments`` at once, backend-dispatched.

    ``rows`` is an ``(n_out, n_in)`` coefficient matrix; the result is
    ``n_out`` fragments, each the GF(256) XOR-accumulation of the inputs
    scaled by its row.  The numpy engine processes output rows in packed
    pairs — one 64K-entry gather per input fragment covers two bytes of
    two output rows at a time; the python engine falls back to per-row
    ``bytes.translate`` passes.  Outputs are byte-identical.
    """
    if not rows:
        return []
    if _BACKEND == "numpy" and fragments and len(fragments[0]):
        return _combine_rows_numpy(fragments, rows)
    return [_combine(fragments, row) for row in rows]


#: Reusable gather scratch (acc/tmp per dtype), keyed by halfword count.
#: Bounded: the process only ever sees a handful of fragment lengths.
_SCRATCH: "OrderedDict[tuple, object]" = OrderedDict()
_SCRATCH_MAX = 16


def _scratch(half: int, dtype) -> tuple:
    key = (half, _np.dtype(dtype).itemsize)
    bufs = _SCRATCH.get(key)
    if bufs is None:
        bufs = (_np.empty(half, dtype), _np.empty(half, dtype))
        _SCRATCH[key] = bufs
        if len(_SCRATCH) > _SCRATCH_MAX:
            _SCRATCH.popitem(last=False)
    else:
        _SCRATCH.move_to_end(key)
    return bufs


def _combine_rows_numpy(
    fragments: Sequence[bytes],
    rows: Sequence[Sequence[int]],
) -> List[bytes]:
    length = len(fragments[0])
    buf = _np.frombuffer(b"".join(fragments), dtype=_np.uint8)
    if length % 2:
        frags = _np.zeros((len(fragments), length + 1), dtype=_np.uint8)
        frags[:, :length] = buf.reshape(len(fragments), length)
    else:
        frags = buf.reshape(len(fragments), length)
    pairs = frags.view(_np.uint16)
    half = pairs.shape[1]
    out: List[bytes] = []
    for base in range(0, len(rows), 2):
        chunk = rows[base : base + 2]
        dtype = _np.uint32 if len(chunk) == 2 else _np.uint16
        acc, tmp = _scratch(half, dtype)
        live = 0
        for i, index_row in enumerate(pairs):
            col = tuple(row[i] for row in chunk)
            if not any(col):
                continue
            table = _pair_table(col)
            if live == 0:
                table.take(index_row, mode="clip", out=acc)
            else:
                table.take(index_row, mode="clip", out=tmp)
                acc ^= tmp
            live += 1
        if live == 0:
            out.extend(bytes(length) for _ in chunk)
        elif len(chunk) == 2:
            lanes = acc.view(_np.uint16).reshape(-1, 2)
            for lane in range(2):
                row_bytes = _np.ascontiguousarray(lanes[:, lane])
                out.append(row_bytes.view(_np.uint8)[:length].tobytes())
        else:
            out.append(acc.view(_np.uint8)[:length].tobytes())
    return out


# --------------------------------------------------------------------------
# Coefficient rows, memoised at module level.
# --------------------------------------------------------------------------

def _lagrange_row(src_points: Sequence[int], y: int) -> Tuple[int, ...]:
    """Coefficients c_i with ``p(y) = XOR_i c_i * p(x_i)`` for the unique
    degree-(len-1) polynomial through the src points.

    In GF(2^n) addition and subtraction are both XOR, so the Lagrange
    basis ``l_i(y) = prod_{j != i} (y - x_j) / (x_i - x_j)`` becomes a
    product of ``(y ^ x_j) / (x_i ^ x_j)`` terms.
    """
    row = []
    for i, xi in enumerate(src_points):
        num = 1
        den = 1
        for j, xj in enumerate(src_points):
            if j == i:
                continue
            num = gf_mul(num, y ^ xj)
            den = gf_mul(den, xi ^ xj)
        row.append(gf_mul(num, gf_inv(den)))
    return tuple(row)


#: (k, m) -> encode coefficient matrix.  A handful of shapes ever exist
#: in one process, so this is unbounded.
_ENCODE_ROWS: Dict[Tuple[int, int], Tuple[Tuple[int, ...], ...]] = {}

#: (k, m, survivors, targets) -> reconstruction rows, LRU-bounded: the
#: keyspace is combinatorial in principle but tiny in practice (one
#: entry per distinct crash pattern actually seen).
_RECON_ROWS: "OrderedDict[tuple, Tuple[Tuple[int, ...], ...]]" = OrderedDict()
_RECON_ROWS_MAX = 1024

_STATS = {
    "encode_matrices": 0,
    "recon_row_hits": 0,
    "recon_row_misses": 0,
    "recon_row_evictions": 0,
}


def codec_stats() -> dict:
    """Process-wide codec state: active backend + coefficient caches."""
    return {
        "backend": _BACKEND,
        "encode_matrices": _STATS["encode_matrices"],
        "recon_rows_cached": len(_RECON_ROWS),
        "recon_row_hits": _STATS["recon_row_hits"],
        "recon_row_misses": _STATS["recon_row_misses"],
        "recon_row_evictions": _STATS["recon_row_evictions"],
    }


def _encode_rows(k: int, m: int) -> Tuple[Tuple[int, ...], ...]:
    rows = _ENCODE_ROWS.get((k, m))
    if rows is None:
        data_points = tuple(range(k))
        rows = tuple(_lagrange_row(data_points, k + j) for j in range(m))
        _ENCODE_ROWS[(k, m)] = rows
        _STATS["encode_matrices"] += 1
    return rows


def _reconstruction_rows(
    k: int, m: int, src: Tuple[int, ...], todo: Tuple[int, ...]
) -> Tuple[Tuple[int, ...], ...]:
    key = (k, m, src, todo)
    rows = _RECON_ROWS.get(key)
    if rows is not None:
        _RECON_ROWS.move_to_end(key)
        _STATS["recon_row_hits"] += 1
        return rows
    rows = tuple(_lagrange_row(src, index) for index in todo)
    _RECON_ROWS[key] = rows
    _STATS["recon_row_misses"] += 1
    if len(_RECON_ROWS) > _RECON_ROWS_MAX:
        _RECON_ROWS.popitem(last=False)
        _STATS["recon_row_evictions"] += 1
    return rows


class ReedSolomon:
    """Systematic RS(k, m) over GF(256) in Lagrange (evaluation) form.

    Fragment index ``i`` is the evaluation point ``x = i``; indices
    ``0..k-1`` are the verbatim data fragments, ``k..k+m-1`` parity.
    Coefficient matrices come from the module-level memos (shared across
    instances); ``stats`` — when set to a Counter-like object — receives
    a *deterministic* per-instance hit/miss stream keyed on whether this
    instance has already requested the same reconstruction subset
    (independent of process-global cache warmth, so metrics snapshots
    stay byte-identical across repeated runs).
    """

    def __init__(self, k: int, m: int):
        if k < 1:
            raise ValueError(f"need at least one data fragment: k={k}")
        if m < 1:
            raise ValueError(f"need at least one parity fragment: m={m}")
        if k + m > 255:
            raise ValueError(f"k+m must fit GF(256) evaluation points: {k + m}")
        self.k = k
        self.m = m
        self.width = k + m
        self._encode_matrix = _encode_rows(k, m)
        #: Reconstruction subsets this instance has asked for before —
        #: the basis of the deterministic hit/miss accounting.
        self._seen_subsets: set = set()
        #: Optional Counter-like sink for ``codec_row_{hits,misses}``.
        self.stats = None

    # ------------------------------------------------------------ encode
    def encode(self, data_fragments: Sequence[bytes]) -> List[bytes]:
        """Parity fragments for ``k`` equal-length data fragments."""
        if len(data_fragments) != self.k:
            raise ValueError(
                f"expected {self.k} data fragments, got {len(data_fragments)}"
            )
        return _combine_rows(data_fragments, self._encode_matrix)

    def encode_many(
        self, pages: Sequence[Sequence[bytes]]
    ) -> List[List[bytes]]:
        """Parity for a whole stripe batch of pages in one codec pass.

        ``pages`` is a sequence of per-page data-fragment lists (each of
        ``k`` equal-length fragments).  Equivalent to ``[encode(p) for p
        in pages]`` byte-for-byte, but the numpy engine concatenates the
        batch along the fragment axis so every gather covers the whole
        batch — the streaming entry point for bulk producers (rebuild
        sweeps, benchmarks, the future gateway striper).
        """
        if not pages:
            return []
        length = len(pages[0][0])
        sizes = {len(page) for page in pages}
        if sizes != {self.k}:
            raise ValueError(
                f"expected {self.k} data fragments per page, got {sizes}"
            )
        if {len(f) for page in pages for f in page} != {length}:
            raise ValueError("ragged fragment lengths in batch")
        if _BACKEND != "numpy" or length == 0 or len(pages) == 1:
            return [self.encode(page) for page in pages]
        big = [b"".join([page[i] for page in pages]) for i in range(self.k)]
        parity_rows = _combine_rows(big, self._encode_matrix)
        return [
            [row[p * length : (p + 1) * length] for row in parity_rows]
            for p in range(len(pages))
        ]

    def data_from_many(
        self, availables: Sequence[Dict[int, bytes]]
    ) -> List[List[bytes]]:
        """Batched :meth:`data_from` over a uniform survivor pattern.

        When every page in the batch offers the same fragment-index set
        (the shape of a rebuild sweep after a crash), the reconstruction
        runs as one batched codec pass; mixed survivor patterns fall
        back to the per-page path.  Byte-identical either way.
        """
        if not availables:
            return []
        first = frozenset(availables[0])
        if (
            _BACKEND != "numpy"
            or len(availables) == 1
            or any(frozenset(a) != first for a in availables[1:])
            or len(availables[0]) < self.k
        ):
            return [self.data_from(a) for a in availables]
        length = len(next(iter(availables[0].values())))
        if length == 0 or any(
            len(f) != length for a in availables for f in a.values()
        ):
            return [self.data_from(a) for a in availables]
        src = tuple(
            sorted(first, key=lambda i: (i >= self.k, i))[: self.k]
        )
        todo = tuple(i for i in range(self.k) if i not in first)
        if not todo:
            return [[a[i] for i in range(self.k)] for a in availables]
        key = (src, todo)
        if self.stats is not None:
            self.stats.add(
                "codec_row_hits" if key in self._seen_subsets
                else "codec_row_misses"
            )
        self._seen_subsets.add(key)
        rows = _reconstruction_rows(self.k, self.m, src, todo)
        big = [b"".join([a[i] for a in availables]) for i in src]
        rebuilt_rows = _combine_rows(big, rows)
        out: List[List[bytes]] = []
        for p, available in enumerate(availables):
            rebuilt = {
                index: row[p * length : (p + 1) * length]
                for index, row in zip(todo, rebuilt_rows)
            }
            out.append(
                [
                    available[i] if i in available else rebuilt[i]
                    for i in range(self.k)
                ]
            )
        return out

    # ------------------------------------------------------- reconstruct
    def reconstruct(
        self,
        available: Dict[int, bytes],
        want: Optional[Sequence[int]] = None,
    ) -> Dict[int, bytes]:
        """Rebuild fragments from any ``k`` survivors.

        ``available`` maps fragment index -> bytes (at least ``k``
        entries; extras are ignored deterministically, preferring data
        fragments, then lower indices).  ``want`` selects the indices to
        produce (default: every missing index).  Returns
        ``{index: fragment}`` for the requested indices; indices already
        in ``available`` are returned as-is without algebra.
        """
        if want is None:
            want = [i for i in range(self.width) if i not in available]
        out: Dict[int, bytes] = {}
        todo = []
        for index in want:
            if not 0 <= index < self.width:
                raise ValueError(f"fragment index out of range: {index}")
            if index in available:
                out[index] = available[index]
            else:
                todo.append(index)
        if not todo:
            return out
        if len(available) < self.k:
            raise ValueError(
                f"need {self.k} fragments to reconstruct, have {len(available)}"
            )
        src = tuple(sorted(available, key=lambda i: (i >= self.k, i))[: self.k])
        key = (src, tuple(todo))
        if self.stats is not None:
            self.stats.add(
                "codec_row_hits" if key in self._seen_subsets
                else "codec_row_misses"
            )
        self._seen_subsets.add(key)
        rows = _reconstruction_rows(self.k, self.m, src, key[1])
        fragments = [available[i] for i in src]
        for index, fragment in zip(todo, _combine_rows(fragments, rows)):
            out[index] = fragment
        return out

    def data_from(self, available: Dict[int, bytes]) -> List[bytes]:
        """The ``k`` data fragments, reconstructing any that are missing."""
        rebuilt = self.reconstruct(available, want=range(self.k))
        return [rebuilt[i] for i in range(self.k)]


# ------------------------------------------------------------ page <-> frags
def split_page(contents: bytes, k: int, fragment_size: int) -> List[bytes]:
    """Split a page into ``k`` fragments of ``fragment_size`` bytes.

    The last fragment is zero-padded: ``join_fragments`` truncates back
    to the original page size, so the round trip is byte-identical.
    """
    padded = contents.ljust(k * fragment_size, b"\0")
    return [
        padded[i * fragment_size : (i + 1) * fragment_size] for i in range(k)
    ]


def join_fragments(data_fragments: Sequence[bytes], page_size: int) -> bytes:
    """Concatenate data fragments and strip the split-time padding."""
    return b"".join(data_fragments)[:page_size]
