"""Magnetic-disk service-time model and the disk device process.

The paper's baseline pager is the local DEC RZ55 swap disk: 10 Mbit/s
media rate, 16 ms *average* seek, and — the crux of the paper's argument —
seek and rotational latencies that the network does not suffer.  §3.1
quotes ~17 ms to move one 8 KB page to/from the disk versus ~8.4 ms over
the idle Ethernet.

Model
-----
Service time of a request = seek + rotation + transfer:

* **Seek** follows the classic ``min + (max - min) * sqrt(fraction)``
  curve over seek distance.  With ``min = 2 ms`` and a full stroke
  calibrated from the spec's average (uniform-random request pairs have
  ``E[sqrt(|x - y|)] = 8/15``), the long-run random-access average equals
  the spec's ``avg_seek``.
* **Rotation** is half a revolution on a discontinuity and zero when the
  request starts exactly where the head stopped (sequential transfers
  stream off the platter).
* **Transfer** is bytes over the media rate.

The :class:`Disk` device serialises requests through one head assembly
using a pluggable queue discipline (FCFS or C-LOOK elevator).
"""

from __future__ import annotations

import math
from typing import Optional

from ..config import DiskSpec
from ..sim import Counter, Event, Simulator, Store, Tally

__all__ = ["DiskRequest", "Disk", "FCFS", "CLook"]

#: E[sqrt(|x-y|)] for x, y uniform on [0, 1] — calibrates the seek curve.
_MEAN_SQRT_DISTANCE = 8.0 / 15.0
_MIN_SEEK_FRACTION = 0.125  # min seek = avg/8 (≈2 ms for the RZ55)


class DiskRequest:
    """One read or write of ``nbytes`` at byte ``offset``."""

    __slots__ = ("offset", "nbytes", "is_write", "done", "submitted_at")

    def __init__(
        self, offset: int, nbytes: int, is_write: bool, done: Event, submitted_at: float
    ):
        if offset < 0:
            raise ValueError(f"negative disk offset: {offset}")
        if nbytes <= 0:
            raise ValueError(f"request must move at least one byte: {nbytes}")
        self.offset = offset
        self.nbytes = nbytes
        self.is_write = is_write
        self.done = done
        self.submitted_at = submitted_at

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


class FCFS:
    """First-come-first-served queue discipline."""

    name = "fcfs"

    def __init__(self) -> None:
        self._queue: list = []

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, request: DiskRequest) -> None:
        """Enqueue a request."""
        self._queue.append(request)

    def pop(self, head_position: int) -> DiskRequest:
        """Next request to service (arrival order)."""
        return self._queue.pop(0)


class CLook:
    """Circular LOOK elevator: sweep upward, jump back to the lowest.

    This is the classic swap-partition discipline; it shortens seeks when
    the queue is deep (e.g. clustered pageouts), which is exactly where
    the write-through comparison (§4.7) benefits the disk.
    """

    name = "c-look"

    def __init__(self) -> None:
        self._queue: list = []

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, request: DiskRequest) -> None:
        """Enqueue a request."""
        self._queue.append(request)

    def pop(self, head_position: int) -> DiskRequest:
        """Nearest request at or beyond the head; wrap when none ahead."""
        ahead = [r for r in self._queue if r.offset >= head_position]
        pool = ahead if ahead else self._queue
        best = min(pool, key=lambda r: r.offset)
        self._queue.remove(best)
        return best


class Disk:
    """A disk device: service-time model + head state + request queue.

    Usage::

        disk = Disk(sim, DEC_RZ55)
        yield disk.read(offset, nbytes)    # event fires when data is in RAM
        yield disk.write(offset, nbytes)
    """

    def __init__(
        self,
        sim: Simulator,
        spec: DiskSpec,
        scheduler: Optional[object] = None,
    ):
        self.sim = sim
        self.spec = spec
        self.scheduler = scheduler if scheduler is not None else CLook()
        self.counters = Counter()
        self.service_times = Tally()
        self._head = 0
        self._last_end_time: Optional[float] = None
        self._wakeup: Store = Store(sim)
        self._busy = False
        sim.process(self._serve(), name=f"disk:{spec.name}")

    # ------------------------------------------------------------ interface
    def read(self, offset: int, nbytes: int) -> Event:
        """Submit a read; the event fires when it completes."""
        return self._submit(offset, nbytes, is_write=False)

    def write(self, offset: int, nbytes: int) -> Event:
        """Submit a write; the event fires when it completes."""
        return self._submit(offset, nbytes, is_write=True)

    @property
    def queue_depth(self) -> int:
        """Requests waiting (not counting the one in service)."""
        return len(self.scheduler)

    @property
    def head_position(self) -> int:
        """Current head byte offset (for tests and introspection)."""
        return self._head

    # ------------------------------------------------------------ internals
    def _submit(self, offset: int, nbytes: int, is_write: bool) -> Event:
        if offset + nbytes > self.spec.capacity_bytes:
            raise ValueError(
                f"request [{offset}, {offset + nbytes}) exceeds disk capacity "
                f"{self.spec.capacity_bytes}"
            )
        done = self.sim.event()
        request = DiskRequest(offset, nbytes, is_write, done, self.sim.now)
        self.scheduler.push(request)
        self.counters.add("writes" if is_write else "reads")
        self._wakeup.put(None)
        return done

    def seek_time(self, from_offset: int, to_offset: int) -> float:
        """Seek duration between two byte offsets."""
        if from_offset == to_offset:
            return 0.0
        distance = abs(to_offset - from_offset) / self.spec.capacity_bytes
        min_seek = self.spec.avg_seek * _MIN_SEEK_FRACTION
        full_stroke = min_seek + (self.spec.avg_seek - min_seek) / _MEAN_SQRT_DISTANCE
        return min_seek + (full_stroke - min_seek) * math.sqrt(distance)

    #: Scheduling slack within which a sequential request still catches the
    #: platter "in position" (back-to-back queue service).
    _STREAM_WINDOW = 0.0002

    def service_time(self, request: DiskRequest) -> float:
        """Seek + rotation + media transfer for ``request`` from the head.

        Rotation: a request continuing exactly where the head stopped pays
        nothing if it arrives back-to-back, but if the device went idle in
        between, the target sector has rotated past and the head waits for
        it to come around again — this is why *synchronous* one-at-a-time
        sequential swap writes run far below media rate, while a queued
        stream runs at full sustained rate.
        """
        spec = self.spec
        seek = self.seek_time(self._head, request.offset)
        if request.offset == self._head and self._last_end_time is not None:
            gap = self.sim.now - self._last_end_time
            if gap <= self._STREAM_WINDOW:
                rotation = 0.0  # streaming continuation
            else:
                # Wait for the next-sector window to come around again.
                rotation = spec.rotation_time - (gap % spec.rotation_time)
        else:
            rotation = spec.avg_rotational_latency
        transfer = request.nbytes / spec.sustained_bandwidth
        return seek + rotation + transfer

    def _serve(self):
        while True:
            yield self._wakeup.get()
            while len(self.scheduler):
                request = self.scheduler.pop(self._head)
                duration = self.service_time(request)
                self._busy = True
                yield self.sim.timeout(duration)
                self._busy = False
                self._head = request.end
                self._last_end_time = self.sim.now
                self.service_times.observe(self.sim.now - request.submitted_at)
                self.counters.add("bytes", request.nbytes)
                if not request.done.triggered:
                    request.done.succeed(request)
