"""Experiment harness: one module per paper figure/table."""

from .ablations import (
    render_ablation,
    run_free_batch_ablation,
    run_pageout_window_ablation,
    run_replacement_ablation,
)
from .adaptive import render_adaptive, run_adaptive
from .breakdown import (
    render_breakdown,
    render_observed_breakdown,
    run_breakdown,
    run_observed_breakdown,
)
from .busy_servers import render_busy_servers, run_busy_servers
from .compression import render_compression, run_compression
from .diurnal import render_diurnal, run_diurnal
from .erasure import SPECTRUM_POLICIES, render_spectrum, run_spectrum
from .fig1 import render_fig1, run_fig1
from .fig2 import FIG2_POLICIES, render_fig2, run_fig2
from .fig3 import render_fig3, run_fig3
from .fig4 import render_fig4, run_fig4
from .fig5 import FIG5_POLICIES, render_fig5, run_fig5
from .harness import PAPER_CONFIGS, run_policy, run_suite
from .heterogeneous import render_heterogeneous, run_heterogeneous
from .latency import render_latency, run_latency
from .loaded_ethernet import render_loaded_ethernet, run_loaded_ethernet
from .monitor import (
    collapse_knee,
    render_monitor,
    render_monitor_campaign,
    run_monitor,
    run_monitor_campaign,
)
from .fleet import build_fleet, jain_fairness, render_fleet, run_fleet
from .multi_client import build_multi_client, render_multi_client, run_multi_client
from .network_comparison import render_network_comparison, run_network_comparison
from .pipelining import (
    PREFETCH_WORKLOADS,
    WINDOWS,
    render_pipelining,
    run_pipelining,
)
from .remote_disk import render_remote_disk, run_remote_disk
from .resilience import (
    LEVELS,
    RESILIENCE_POLICIES,
    render_resilience,
    run_resilience,
)
from .server_scaling import render_server_scaling, run_server_scaling

__all__ = [
    "PAPER_CONFIGS",
    "run_policy",
    "run_suite",
    "run_fig1",
    "render_fig1",
    "run_fig2",
    "render_fig2",
    "FIG2_POLICIES",
    "run_fig3",
    "render_fig3",
    "run_fig4",
    "render_fig4",
    "run_fig5",
    "render_fig5",
    "FIG5_POLICIES",
    "run_breakdown",
    "render_breakdown",
    "run_observed_breakdown",
    "render_observed_breakdown",
    "run_latency",
    "render_latency",
    "run_busy_servers",
    "render_busy_servers",
    "run_loaded_ethernet",
    "render_loaded_ethernet",
    "run_monitor",
    "render_monitor",
    "run_monitor_campaign",
    "render_monitor_campaign",
    "collapse_knee",
    "run_network_comparison",
    "render_network_comparison",
    "run_server_scaling",
    "render_server_scaling",
    "run_heterogeneous",
    "render_heterogeneous",
    "run_adaptive",
    "render_adaptive",
    "run_replacement_ablation",
    "run_pageout_window_ablation",
    "run_free_batch_ablation",
    "render_ablation",
    "run_remote_disk",
    "render_remote_disk",
    "build_fleet",
    "run_fleet",
    "render_fleet",
    "jain_fairness",
    "build_multi_client",
    "run_multi_client",
    "render_multi_client",
    "run_diurnal",
    "render_diurnal",
    "run_compression",
    "render_compression",
    "run_resilience",
    "render_resilience",
    "LEVELS",
    "RESILIENCE_POLICIES",
    "run_spectrum",
    "render_spectrum",
    "SPECTRUM_POLICIES",
    "run_pipelining",
    "render_pipelining",
    "WINDOWS",
    "PREFETCH_WORKLOADS",
]
