"""End-to-end pipelined datapath: correctness, identity, coalescing.

Three contracts from the PR 4 acceptance criteria:

* window=1 / prefetch=0 must be the *paper's* datapath bit for bit — the
  pipeline object is never even constructed;
* the full pipeline (write-behind + prefetch) must preserve every
  correctness invariant of a content-mode run (the machine verifies each
  pagein's bytes, so completion itself is the check) and drain fully;
* a page re-dirtied while queued is coalesced: one transfer instead of
  two, and — satellite of this PR — parity logging never folds the
  superseded version into its open group buffer (no wasted full-page
  XOR).
"""

import dataclasses

from repro.config import MachineSpec
from repro.core import build_cluster
from repro.units import megabytes
from repro.vm.page import page_bytes
from repro.workloads import SequentialScan

_SMALL = MachineSpec(
    name="pipe-small",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)

_BUILD = dict(
    machine_spec=_SMALL,
    content_mode=True,
    seed=3,
    n_servers=4,
    server_capacity_pages=600,
)

_SCAN = dict(n_pages=400, passes=3, write=True)


def test_window1_no_prefetch_is_the_synchronous_pager():
    cluster = build_cluster(
        policy="parity-logging", pipeline_window=1, pipeline_prefetch=0, **_BUILD
    )
    assert cluster.pager.pipeline is None  # identity is structural
    assert not cluster.pager.pending_drain


def test_window1_report_bit_identical_to_default_build():
    baseline = build_cluster(policy="parity-logging", **_BUILD)
    pipelined = build_cluster(
        policy="parity-logging", pipeline_window=1, pipeline_prefetch=0, **_BUILD
    )
    a = baseline.run(SequentialScan(**_SCAN))
    b = pipelined.run(SequentialScan(**_SCAN))
    assert dataclasses.asdict(a) == dataclasses.asdict(b)


def test_pipelined_run_completes_verified_and_drained():
    cluster = build_cluster(
        policy="parity-logging", pipeline_window=4, pipeline_prefetch=4, **_BUILD
    )
    baseline = build_cluster(policy="parity-logging", **_BUILD)
    report = cluster.run(SequentialScan(**_SCAN))
    reference = baseline.run(SequentialScan(**_SCAN))

    # Content mode verifies every pagein byte-for-byte in the machine, so
    # a completed run already proves no stale/corrupt page was served.
    assert report.faults == reference.faults  # fault stream is untouched
    assert report.pageouts == reference.pageouts
    assert cluster.pager.pipeline.pending == 0  # drain barrier held
    snap = cluster.metrics.snapshot()
    assert snap["pipeline.drained_pages"] == snap["pipeline.enqueued"]
    assert snap["pipeline.writeback_hits"] > 0
    assert snap["net.protocol.batched_page_sends"] > 0
    # Amortised protocol CPU: strictly cheaper than the synchronous run.
    ref_cpu = baseline.metrics.snapshot()["net.protocol.protocol_cpu_us"]
    assert snap["net.protocol.protocol_cpu_us"] < ref_cpu


def test_coalescing_skips_parity_buffer_xor():
    """Satellite: a superseded queued version never reaches the policy,
    so parity logging folds one XOR per *transmitted* page, not per
    pageout request."""
    cluster = build_cluster(policy="parity-logging", pipeline_window=8, **_BUILD)
    pager = cluster.pager
    size = _SMALL.page_size

    def driver():
        yield from pager.pageout(1, page_bytes(1, 1, size))
        yield from pager.pageout(2, page_bytes(2, 1, size))
        yield from pager.pageout(1, page_bytes(1, 2, size))  # re-dirty: coalesce
        yield from pager.pageout(3, page_bytes(3, 1, size))
        yield from pager.drain()
        # The coalesced page reads back as its NEWEST version.
        contents = yield from pager.pagein(1)
        assert contents == page_bytes(1, 2, size)

    cluster.sim.process(driver(), name="driver")
    cluster.sim.run()

    snap = cluster.metrics.snapshot()
    assert pager.counters["pageouts"] == 4  # requests
    assert snap["pipeline.coalesced"] == 1
    assert snap["pipeline.drained_pages"] == 3  # transfers
    # One buffer fold per transmitted page: the dead version cost nothing.
    assert snap["policy.buffer_xors"] == 3


def test_released_page_never_transmitted():
    cluster = build_cluster(policy="parity-logging", pipeline_window=8, **_BUILD)
    pager = cluster.pager
    size = _SMALL.page_size

    def driver():
        yield from pager.pageout(5, page_bytes(5, 1, size))
        yield from pager.pageout(6, page_bytes(6, 1, size))
        pager.release(6)
        yield from pager.drain()

    cluster.sim.process(driver(), name="driver")
    cluster.sim.run()

    snap = cluster.metrics.snapshot()
    assert snap["pipeline.released_queued"] == 1
    assert snap["pipeline.drained_pages"] == 1
    assert snap["policy.buffer_xors"] == 1
