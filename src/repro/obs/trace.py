"""Structured simulation tracing: event log, request spans, exporters.

The paper's evidence is a *decomposition* of time (§4.3 splits each run
into ``utime + systime + inittime + pptime + btime``); this module makes
the same decomposition observable per request instead of only as
end-of-run aggregates.  Two record kinds:

* **events** — point occurrences on the simulated clock (a server crash,
  a GC pass, a network partition), tagged with a component name and free
  attributes;
* **spans** — request lifecycles.  Every pageout/pagein (and every VM
  fault) opens a span; the owning component marks *phase transitions*
  (``enqueue`` → ``dispatch`` → ``transfer.protocol`` →
  ``transfer.wire`` → ``server`` → ``parity.*`` → ``ack`` or ``disk``)
  and the span accumulates the time spent in each phase.  Phases
  partition the span's lifetime by construction, so per-request phase
  durations always sum to the span's duration, and machine-level fault
  spans sum to the run's measured paging time (see
  ``tests/obs/test_span_accounting.py``).

Phase names map onto the paper's cost terms: every ``*.protocol`` phase
is ``pptime`` (per-page protocol processing), every ``*.wire`` phase is
``btime`` (bandwidth-dependent wire time); ``parity.*`` isolates the
reliability policy's redundancy traffic, ``disk`` the local-disk
fallback.

Tracing is **opt-in**: components read ``sim.tracer``, which defaults to
the kernel's :class:`~repro.sim.core.NullTracer` (every call a no-op).
Install a real tracer with ``sim.set_tracer(Tracer())`` or process-wide
with :func:`install_tracer` (the CLI's ``--trace`` flag does the
latter).  Export formats: JSON-lines (one record per line, schema
enforced by :func:`validate_record`) and the Chrome ``chrome://tracing``
/ Perfetto trace-event format.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "install_tracer",
    "uninstall_tracer",
    "current_tracer",
    "validate_record",
    "validate_jsonl",
    "TRACE_SCHEMA_VERSION",
]

#: Bumped when the JSONL record layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1


class Span:
    """One request lifecycle: a start, phase transitions, and an end.

    A span is always in exactly one *phase* (initially ``kind``'s
    default, ``"service"``); :meth:`phase` closes the current segment
    and opens the next.  Segments with the same name accumulate — a
    pageout that crosses the wire three times books three segments of
    ``transfer.wire`` — so ``phases`` is the per-request latency
    decomposition and ``segments`` the ordered timeline.
    """

    __slots__ = (
        "tracer",
        "span_id",
        "kind",
        "component",
        "page_id",
        "start",
        "end_ts",
        "status",
        "attrs",
        "segments",
        "_phase",
        "_phase_start",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        kind: str,
        page_id: Any,
        component: str,
        start: float,
    ):
        self.tracer = tracer
        self.span_id = span_id
        self.kind = kind
        self.component = component
        self.page_id = page_id
        self.start = start
        self.end_ts: Optional[float] = None
        self.status: Optional[str] = None
        self.attrs: Dict[str, Any] = {}
        #: Closed (name, start, end) segments, in order.
        self.segments: List[Tuple[str, float, float]] = []
        self._phase = "service"
        self._phase_start = start

    # ------------------------------------------------------------- recording
    def phase(self, name: str) -> "Span":
        """Close the current phase segment and enter ``name``."""
        now = self.tracer._now()
        if now > self._phase_start:
            self.segments.append((self._phase, self._phase_start, now))
        self._phase = name
        self._phase_start = now
        return self

    def end(self, status: str = "ok", **attrs: Any) -> None:
        """Close the span.  Idempotent: only the first call records."""
        if self.end_ts is not None:
            return
        now = self.tracer._now()
        if now > self._phase_start:
            self.segments.append((self._phase, self._phase_start, now))
        self.end_ts = now
        self.status = status
        if attrs:
            self.attrs.update(attrs)

    # ------------------------------------------------------------ inspection
    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0.0 while still open)."""
        if self.end_ts is None:
            return 0.0
        return self.end_ts - self.start

    @property
    def phases(self) -> Dict[str, float]:
        """Accumulated seconds per phase name (sums to ``duration``)."""
        totals: Dict[str, float] = {}
        for name, seg_start, seg_end in self.segments:
            totals[name] = totals.get(name, 0.0) + (seg_end - seg_start)
        return totals

    def to_record(self) -> Dict[str, Any]:
        """The span's JSONL record."""
        return {
            "type": "span",
            "id": self.span_id,
            "kind": self.kind,
            "component": self.component,
            "page_id": self.page_id,
            "start": self.start,
            "end": self.end_ts,
            "status": self.status or "open",
            "phases": self.phases,
            "segments": [list(seg) for seg in self.segments],
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self.end_ts is None else f"{self.duration * 1e3:.2f}ms"
        return f"<Span {self.kind}#{self.span_id} page={self.page_id} {state}>"


class Tracer:
    """An enabled tracer: collects events and spans from one or more runs.

    Bind it to a simulator (``sim.set_tracer(tracer)``; rebinding to a
    fresh simulator is fine — suite commands reuse one tracer across
    sequential cells) and components record through ``sim.tracer``.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self.spans: List[Span] = []
        self._sim: Any = None
        self._next_span_id = 0
        self._run_label: Optional[str] = None

    # -------------------------------------------------------------- plumbing
    def bind(self, sim: Any) -> None:
        """Take timestamps from ``sim`` from now on."""
        self._sim = sim

    def _now(self) -> float:
        sim = self._sim
        return sim.now if sim is not None else 0.0

    def begin_run(self, label: str) -> None:
        """Mark the start of a named run (suite cell); subsequent spans
        and events carry it, so one trace file can hold a whole suite."""
        self._run_label = label
        self.emit("tracer", "run", label=label)

    @property
    def run_label(self) -> Optional[str]:
        return self._run_label

    # ------------------------------------------------------------- recording
    def emit(self, component: str, event: str, page_id: Any = None, **attrs: Any) -> None:
        """Record one point event at the current simulated time."""
        record: Dict[str, Any] = {
            "type": "event",
            "ts": self._now(),
            "component": component,
            "event": event,
        }
        if page_id is not None:
            record["page_id"] = page_id
        if self._run_label is not None:
            record["run"] = self._run_label
        if attrs:
            record["attrs"] = attrs
        self.events.append(record)

    def span(self, kind: str, page_id: Any = None, component: str = "pager") -> Span:
        """Open a request span; the caller marks phases and ends it."""
        span = Span(self, self._next_span_id, kind, page_id, component, self._now())
        self._next_span_id += 1
        if self._run_label is not None:
            span.attrs["run"] = self._run_label
        self.spans.append(span)
        return span

    # --------------------------------------------------------------- export
    def records(self) -> Iterator[Dict[str, Any]]:
        """Every record (header, events, spans) in deterministic order."""
        yield {
            "type": "header",
            "schema": TRACE_SCHEMA_VERSION,
            "events": len(self.events),
            "spans": len(self.spans),
        }
        for event in self.events:
            yield event
        for span in self.spans:
            yield span.to_record()

    def write_jsonl(self, path: str) -> int:
        """Write the JSONL trace; returns the number of records."""
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records():
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                count += 1
        return count

    def write_chrome(self, path: str) -> int:
        """Write a Chrome/Perfetto trace-event file; returns event count.

        Spans become complete (``"ph": "X"``) slices — one enclosing
        slice per span plus one nested slice per phase segment — grouped
        into one "thread" per span kind; point events become instants.
        Timestamps are microseconds of simulated time.
        """
        trace_events: List[Dict[str, Any]] = []
        tids: Dict[str, int] = {}

        def tid_for(name: str) -> int:
            tid = tids.get(name)
            if tid is None:
                tid = tids[name] = len(tids) + 1
                trace_events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 0,
                        "tid": tid,
                        "args": {"name": name},
                    }
                )
            return tid

        for span in self.spans:
            if span.end_ts is None:
                continue
            tid = tid_for(f"span:{span.kind}")
            label = span.kind if span.page_id is None else f"{span.kind}:{span.page_id}"
            trace_events.append(
                {
                    "name": label,
                    "cat": span.component,
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "args": {"status": span.status, **span.phases, **span.attrs},
                }
            )
            for name, seg_start, seg_end in span.segments:
                trace_events.append(
                    {
                        "name": name,
                        "cat": span.component,
                        "ph": "X",
                        "pid": 0,
                        "tid": tid,
                        "ts": seg_start * 1e6,
                        "dur": (seg_end - seg_start) * 1e6,
                        "args": {"span": span.span_id},
                    }
                )
        for event in self.events:
            trace_events.append(
                {
                    "name": event["event"],
                    "cat": event["component"],
                    "ph": "i",
                    "s": "g",
                    "pid": 0,
                    "tid": tid_for(f"events:{event['component']}"),
                    "ts": event["ts"] * 1e6,
                    "args": event.get("attrs", {}),
                }
            )
        payload = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        return len(trace_events)


# --------------------------------------------------------------------------
# Process-wide tracer (the CLI's --trace flag).
# --------------------------------------------------------------------------

_installed: Optional[Tracer] = None


def install_tracer(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process-wide tracer new clusters attach to."""
    global _installed
    _installed = tracer
    return tracer


def uninstall_tracer() -> None:
    """Remove the process-wide tracer (new clusters trace nothing)."""
    global _installed
    _installed = None


def current_tracer() -> Optional[Tracer]:
    """The installed process-wide tracer, or None."""
    return _installed


# --------------------------------------------------------------------------
# JSONL schema validation (no external dependency).
# --------------------------------------------------------------------------

_NUMBER = (int, float)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def validate_record(record: Any) -> str:
    """Validate one parsed JSONL record; returns its type.

    Raises :class:`ValueError` with a description of the first problem.
    This is the schema the CI trace smoke-run enforces on real traces.
    """
    _require(isinstance(record, dict), f"record is not an object: {record!r}")
    kind = record.get("type")
    _require(
        kind in ("header", "event", "span"), f"unknown record type: {kind!r}"
    )
    if kind == "header":
        _require(
            record.get("schema") == TRACE_SCHEMA_VERSION,
            f"unsupported schema version: {record.get('schema')!r}",
        )
        for field in ("events", "spans"):
            _require(
                isinstance(record.get(field), int) and record[field] >= 0,
                f"header.{field} must be a non-negative integer",
            )
    elif kind == "event":
        _require(isinstance(record.get("ts"), _NUMBER), "event.ts must be a number")
        for field in ("component", "event"):
            _require(
                isinstance(record.get(field), str) and record[field],
                f"event.{field} must be a non-empty string",
            )
        if "attrs" in record:
            _require(isinstance(record["attrs"], dict), "event.attrs must be an object")
    else:  # span
        _require(isinstance(record.get("id"), int), "span.id must be an integer")
        for field in ("kind", "component", "status"):
            _require(
                isinstance(record.get(field), str) and record[field],
                f"span.{field} must be a non-empty string",
            )
        _require(isinstance(record.get("start"), _NUMBER), "span.start must be a number")
        _require(
            record.get("end") is None or isinstance(record["end"], _NUMBER),
            "span.end must be a number or null",
        )
        phases = record.get("phases")
        _require(isinstance(phases, dict), "span.phases must be an object")
        for name, seconds in phases.items():
            _require(
                isinstance(name, str) and isinstance(seconds, _NUMBER),
                f"span.phases[{name!r}] must map a string to a number",
            )
        segments = record.get("segments")
        _require(isinstance(segments, list), "span.segments must be an array")
        for segment in segments:
            _require(
                isinstance(segment, list)
                and len(segment) == 3
                and isinstance(segment[0], str)
                and isinstance(segment[1], _NUMBER)
                and isinstance(segment[2], _NUMBER),
                f"bad span segment: {segment!r}",
            )
        if record["end"] is not None:
            total = sum(seconds for seconds in phases.values())
            duration = record["end"] - record["start"]
            _require(
                abs(total - duration) <= 1e-6 * max(1.0, abs(duration)),
                f"span phases sum to {total} but duration is {duration}",
            )
    return kind


def validate_jsonl(lines: Iterable[str]) -> Dict[str, int]:
    """Validate a whole JSONL trace; returns per-type record counts.

    ``lines`` may be an open file or any iterable of strings.  The first
    record must be the header, and its declared counts must match.
    """
    counts = {"header": 0, "event": 0, "span": 0}
    header: Optional[Dict[str, Any]] = None
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON: {exc}") from None
        try:
            kind = validate_record(record)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from None
        if lineno == 1:
            _require(kind == "header", "first record must be the header")
            header = record
        else:
            _require(kind != "header", f"line {lineno}: duplicate header")
        counts[kind] += 1
    _require(counts["header"] == 1, "trace has no header record")
    assert header is not None
    _require(
        header["events"] == counts["event"] and header["spans"] == counts["span"],
        "header counts do not match records "
        f"(declared {header['events']} events/{header['spans']} spans, "
        f"found {counts['event']}/{counts['span']})",
    )
    return counts


def validate_file(path: str) -> Dict[str, int]:
    """Validate the JSONL trace at ``path``; returns record counts."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_jsonl(handle)
