"""§5's network-load threshold: fall back to the disk under congestion.

"Such a situation could be handled by the RMP by measuring the time it
takes to satisfy a request and using a threshold to determine whether it
should continue to use the network to route pageout requests or it would
be better to switch to the local disk."

This experiment runs a paging workload over a badly congested Ethernet
with and without the threshold; with it, the pager reroutes pageouts to
the local disk and completion time improves.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.report import format_table
from ..runner import RunSpec, default_runner
from ..units import milliseconds

__all__ = ["run_adaptive", "render_adaptive"]


def run_adaptive(
    background_load: float = 0.8,
    threshold_ms: float = 25.0,
    workload: str = "mvec",
    workload_kwargs=None,
    runner=None,
) -> Dict[str, object]:
    """Compare fixed-network vs threshold-adaptive pagers."""
    variants = (("fixed-network", None), ("adaptive", milliseconds(threshold_ms)))
    specs = [
        RunSpec.make(
            workload,
            "no-reliability",
            workload_kwargs=workload_kwargs,
            overrides={"network_threshold": threshold},
            hook="background-load",
            hook_kwargs={"total_load": background_load, "n_sources": 4},
            extract=("pager-stats",),
            label=f"{workload}/{label}",
        )
        for label, threshold in variants
    ]
    results: Dict[str, object] = {}
    for (label, _), result in zip(variants, (runner or default_runner()).run(specs)):
        results[label] = {
            "etime": result.report.etime,
            "disk_routed": result.extras["disk_fallback_pageouts"],
            "network_pageouts": result.extras["network_pageouts"],
        }
    results["improvement"] = (
        1.0 - results["adaptive"]["etime"] / results["fixed-network"]["etime"]
    )
    return results


def render_adaptive(results: Dict[str, object]) -> str:
    """Fixed-vs-adaptive pager table."""
    rows = []
    for label in ("fixed-network", "adaptive"):
        r = results[label]
        rows.append(
            [label, f"{r['etime']:.1f}", r["network_pageouts"], r["disk_routed"]]
        )
    table = format_table(
        ["pager", "etime (s)", "network pageouts", "disk-routed pageouts"],
        rows,
        title="§5: network-load threshold on a congested Ethernet (MVEC)",
    )
    return table + f"\nadaptive improvement: {results['improvement']:.1%}"
