"""Shared experiment harness: the paper's standard configurations.

§4.1 defines the four configurations of Figure 2 (and §4.7 adds the
write-through comparison of Figure 5):

* NO RELIABILITY — two remote memory servers;
* PARITY LOGGING — four servers plus a parity server, 10% overflow;
* MIRRORING — one primary + one mirror server;
* DISK — the local DEC RZ55, no pager involvement;
* WRITE THROUGH — remote memory as a write-through cache of the disk.

Execution routes through :mod:`repro.runner`: a workload named by its
registry string becomes a picklable :class:`~repro.runner.RunSpec`, so
suites parallelise over worker processes and hit the on-disk result
cache.  Callable factories and ad-hoc ``cluster_hook`` closures are
still accepted — those run inline in this process (they cannot be
shipped to workers or fingerprinted), exactly as the harness always
did.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from ..core.builder import Cluster, build_cluster
from ..runner import RunSpec, default_runner
from ..runner.execute import build_meta
from ..vm.machine import CompletionReport
from ..workloads.base import Workload

__all__ = ["PAPER_CONFIGS", "run_policy", "run_suite", "merged_metrics"]

#: build_cluster keyword arguments for each of the paper's configurations.
PAPER_CONFIGS: Dict[str, dict] = {
    "no-reliability": dict(policy="no-reliability", n_servers=2),
    "parity-logging": dict(policy="parity-logging", n_servers=4, overflow_fraction=0.10),
    "mirroring": dict(policy="mirroring", n_servers=2),
    "disk": dict(policy="disk"),
    "write-through": dict(policy="write-through", n_servers=2),
}

#: Either a registry name (parallel/cacheable) or a callable (inline).
WorkloadRef = Union[str, Callable[[], Workload]]


def run_policy(
    workload_factory: WorkloadRef,
    policy: str,
    cluster_hook: Optional[Callable[[Cluster], None]] = None,
    runner=None,
    **overrides,
) -> CompletionReport:
    """Run one workload under one paper configuration.

    ``workload_factory`` may be a registry name (``"gauss"``), which
    routes through the experiment runner (cache-aware), or any zero-arg
    callable, which runs inline.  ``cluster_hook`` runs after assembly
    and before the workload starts — experiments use it to attach
    background load, crash injectors, etc.; passing one forces the
    inline path.
    """
    if isinstance(workload_factory, str) and cluster_hook is None:
        spec = RunSpec.make(workload_factory, policy, overrides=overrides)
        return (runner or default_runner()).run_one(spec).report

    kwargs = dict(PAPER_CONFIGS[policy])
    kwargs.update(overrides)
    cluster = build_cluster(**kwargs)
    if cluster_hook is not None:
        cluster_hook(cluster)
    if isinstance(workload_factory, str):
        from ..runner.registry import make_workload

        workload = make_workload(workload_factory, {})
    else:
        workload = workload_factory()
    report = cluster.run(workload)
    health = report.meta.get("health")
    report.meta = build_meta(policy, kwargs.get("seed", 0), overrides, workload.name)
    report.meta["metrics"] = cluster.metrics.snapshot()
    if health is not None:
        report.meta["health"] = health
    return report


def run_suite(
    workload_factories: Dict[str, WorkloadRef],
    policies,
    cluster_hook: Optional[Callable[[Cluster], None]] = None,
    runner=None,
    **overrides,
) -> Dict[str, Dict[str, CompletionReport]]:
    """Run a matrix of workloads x policies; returns nested reports.

    When every workload is a registry name and there is no ad-hoc hook,
    the whole matrix is handed to the experiment runner in one batch —
    cells run in parallel under ``--jobs N`` and cached cells are
    skipped.  Results are assembled in matrix order either way, so the
    output is independent of completion order.
    """
    all_named = all(isinstance(ref, str) for ref in workload_factories.values())
    if all_named and cluster_hook is None:
        runner = runner or default_runner()
        apps = list(workload_factories)
        policies = list(policies)
        specs = [
            RunSpec.make(
                workload_factories[app],
                policy,
                overrides=overrides,
                label=f"{app}/{policy}",
            )
            for app in apps
            for policy in policies
        ]
        flat = iter(runner.run(specs))
        return {
            app: {policy: next(flat).report for policy in policies} for app in apps
        }

    results: Dict[str, Dict[str, CompletionReport]] = {}
    for app_name, factory in workload_factories.items():
        results[app_name] = {}
        for policy in policies:
            results[app_name][policy] = run_policy(
                factory, policy, cluster_hook=cluster_hook, **overrides
            )
    return results


def merged_metrics(reports) -> Dict[str, object]:
    """Combine per-run ``meta["metrics"]`` snapshots into suite totals.

    Counters sum and tallies fold via :meth:`Tally.merge` (Chan's
    parallel Welford), so reassembled multi-run statistics are exactly
    what a single combined stream would have produced — regardless of
    whether the runs came from the cache, worker processes, or inline.
    """
    from ..obs.metrics import merge_snapshots

    return merge_snapshots(
        [r.meta["metrics"] for r in reports if "metrics" in r.meta]
    )
