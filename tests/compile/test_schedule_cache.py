"""Schedule artifacts: JSON round-trip, cache hits, key sensitivity."""

import dataclasses

import pytest

from repro.compile import FaultSchedule, compile_trace
from repro.config import MachineSpec
from repro.core.builder import build_cluster
from repro.obs.trace import Tracer, install_tracer, uninstall_tracer
from repro.runner.cache import ScheduleCache
from repro.vm.replacement import LruReplacement
from repro.workloads import Gauss

_SMALL = MachineSpec(
    name="cache-small",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_SCHEDULE_CACHE", raising=False)


def _compile_small():
    return compile_trace(
        Gauss(n=300, passes=2).trace(),
        user_frames=128,
        policy=LruReplacement(),
        cpu_speed=1.0,
        max_cpu_chunk=0.25,
        free_batch=16,
    )


def test_schedule_json_roundtrip_is_exact(tmp_path):
    schedule = _compile_small()
    cache = ScheduleCache()
    key = {"workload": ["Gauss", 8192, 300, 2], "user_frames": 128}
    assert cache.put(key, schedule)
    loaded = cache.get(key)
    # Floats survive repr round-trip exactly; every op must match.
    assert dataclasses.asdict(loaded) == dataclasses.asdict(schedule)
    assert cache.hits == 1


def test_cache_miss_on_different_key():
    schedule = _compile_small()
    cache = ScheduleCache()
    cache.put({"user_frames": 128}, schedule)
    assert cache.get({"user_frames": 129}) is None
    assert cache.misses == 1


def test_format_mismatch_recompiles(tmp_path):
    schedule = _compile_small()
    data = schedule.to_json_dict()
    data["format"] = 999
    with pytest.raises(ValueError):
        FaultSchedule.from_json_dict(data)


def test_stale_format_entries_silently_miss(monkeypatch):
    """The cache path hashes SCHEDULE_FORMAT, so a format bump (like
    PR 6's columnar v2) never even opens entries written under the old
    layout — they are a silent miss, not a deserialisation error."""
    from repro.compile import schedule as schedule_mod

    schedule = _compile_small()
    cache = ScheduleCache()
    key = {"workload": ["Gauss", 8192, 300, 2], "user_frames": 128}
    assert cache.put(key, schedule)
    assert cache.get(key) is not None
    monkeypatch.setattr(schedule_mod, "SCHEDULE_FORMAT", 9999)
    fresh = ScheduleCache()
    assert fresh.get(key) is None
    assert (fresh.hits, fresh.misses) == (0, 1)


def test_second_run_hits_cache_and_is_identical():
    tracer = Tracer()
    install_tracer(tracer)
    try:
        def run():
            cluster = build_cluster(
                policy="no-reliability", n_servers=2, seed=5, machine_spec=_SMALL
            )
            return dataclasses.asdict(cluster.run(Gauss(n=300, passes=2)))

        first = run()
        second = run()
    finally:
        uninstall_tracer()
    assert first == second
    compile_events = [
        (r["event"], (r.get("attrs") or {}).get("reason"))
        for r in tracer.events
        if r["component"] == "compile"
    ]
    # The effect-capsule tier is opt-in (REPRO_EFFECT_CACHE=1), so each
    # run also reports its fallback to per-fault kernel replay.
    assert compile_events == [
        ("compiled", None),
        ("fallback", "effects-disabled"),
        ("cache-hit", None),
        ("fallback", "effects-disabled"),
    ]


def test_recorded_workload_compiles_uncached(tmp_path):
    """No identity token -> compiled fresh each run, never cached."""
    from repro.workloads.trace_io import RecordedWorkload, save_trace

    path = tmp_path / "wl.trace"
    save_trace(Gauss(n=300, passes=1), path)
    workload = RecordedWorkload(path)
    assert workload.schedule_token() is None

    tracer = Tracer()
    install_tracer(tracer)
    try:
        cluster = build_cluster(
            policy="no-reliability", n_servers=2, seed=5, machine_spec=_SMALL
        )
        compiled = dataclasses.asdict(cluster.run(workload))
        cluster = build_cluster(
            policy="no-reliability", n_servers=2, seed=5, machine_spec=_SMALL,
            compile_schedules=False,
        )
        interpreted = dataclasses.asdict(cluster.run(workload))
    finally:
        uninstall_tracer()
    assert compiled == interpreted
    events = [
        (r["event"], r.get("attrs", {})) for r in tracer.events
        if r["component"] == "compile"
    ]
    assert events[0][0] == "compiled" and events[0][1]["cached"] is False
