"""A full-duplex switched network (the paper's FDDI/ATM stand-in).

Figure 4 of the paper extrapolates to "a network that provides ten times
more bandwidth than the Ethernet".  This model lets us *simulate* such a
network directly (and validate the paper's analytic extrapolation against
it): every host has a dedicated full-duplex link to a non-blocking switch,
so there are no collisions and concurrent transfers between disjoint host
pairs proceed in parallel.  A transfer is store-and-forward at message
granularity: it serialises on the sender's uplink, pays a per-hop switch
latency, then serialises on the receiver's downlink.

**Analytic fast path.**  The uncontended walk is pure float arithmetic —
this model draws no randomness at all — so when a transfer starts with
its source uplink and destination downlink both free (no holder, no
waiters, no other analytic hold on either port), every boundary of the
store-and-forward chain is precomputed in the exact float order the
chained timeouts would produce::

    t_wire_end = now + wire          # uplink serialisation done
    t_hop_end  = t_wire_end + hop    # switch forwarding delay
    t_end      = t_hop_end + drain   # last frame drained downlink

and the whole message parks on ONE kernel event at ``t_end`` — a *fast
hold*.  Unlike the shared Ethernet (one medium, one hold), holds here
are per port pair: a 64-client fleet paging over disjoint links runs
every active transfer analytically at once.  Wire-utilisation marks are
applied lazily through a global time-ordered mark queue (holds from many
port pairs overlap, so marks must settle in time order across all of
them), settled whenever utilisation is read or a direct event-driven
mark needs the wire.  If a second flow lands on a busy port — another
transfer reaching ``tx.acquire`` on the held source, or ``rx.acquire``
on the held destination — the hold is **devirtualized**: the exact
event-driven state at that instant (mid-uplink / in the switch hop /
draining the downlink) is reconstructed from the precomputed boundaries,
the real ``Resource`` is re-acquired where the event-driven walk would
be holding it, and both flows continue under ordinary per-event
simulation, FIFO port queueing and all.

Results are byte-identical to the per-event walk (``tests/net/
test_analytic_switched.py`` sweeps arrival offsets across every
boundary, including exact hits).  ``REPRO_NO_ANALYTIC_SWITCHED=1`` (or
``--no-analytic-switched``, or ``analytic=False``) pins the per-event
walk for A/B checks; chaos wrappers with nonzero fault rates clear the
flag outright, exactly as they do for the analytic Ethernet.
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, List, Optional, Tuple

from ..config import SwitchedNetworkSpec
from ..sim import Event, Resource, Simulator
from .base import Message, Network

__all__ = ["SwitchedNetwork"]


class _Port:
    """One host's full-duplex switch port: independent tx and rx sides.

    ``bandwidth`` may differ per host — §5's *heterogeneous networks*,
    where "the time it takes to transfer a page may not be identical for
    each server" and the memory hierarchy grows extra levels.
    """

    def __init__(self, sim: Simulator, bandwidth: Optional[float] = None):
        self.tx = Resource(sim, capacity=1)
        self.rx = Resource(sim, capacity=1)
        self.bandwidth = bandwidth


class _Hold:
    """One analytically-served transfer: precomputed chain boundaries.

    ``t_wire_end``/``t_hop_end``/``t_end`` are the exact floats the
    event-driven walk would reach (same accumulation order).  ``drain``
    is kept for devirtualized resumes whose downlink grant may be
    delayed by a queue the precomputation could not have seen.  ``seq``
    is the heap tie-break rank claimed at hold creation — the rank the
    event-driven chain would occupy — inherited by a devirtualized
    resume's first pinned boundary so same-instant ties keep firing in
    event-driven order.  ``draining`` marks a hold devirtualized mid-
    drain: the rx is re-held on its behalf and the original ``t_end``
    heap entry releases and delivers.
    """

    __slots__ = (
        "message", "src_port", "dst_port", "done",
        "t_start", "t_wire_end", "t_hop_end", "t_end", "drain", "seq",
        "active", "draining",
    )

    def __init__(self, message, src_port, dst_port, done,
                 t_start, t_wire_end, t_hop_end, t_end, drain, seq):
        self.message = message
        self.src_port = src_port
        self.dst_port = dst_port
        self.done = done
        self.t_start = t_start
        self.t_wire_end = t_wire_end
        self.t_hop_end = t_hop_end
        self.t_end = t_end
        self.drain = drain
        self.seq = seq
        self.active = True
        self.draining = False


def _analytic_default() -> bool:
    return not os.environ.get("REPRO_NO_ANALYTIC_SWITCHED")


class SwitchedNetwork(Network):
    """Non-blocking switch with per-host full-duplex links.

    When a transfer's port pair is uncontended the whole chain is served
    analytically (see the module docstring); ``analytic=False`` pins the
    per-event walk.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: Optional[SwitchedNetworkSpec] = None,
        analytic: Optional[bool] = None,
    ):
        super().__init__(sim)
        self.spec = spec or SwitchedNetworkSpec()
        self.analytic = _analytic_default() if analytic is None else bool(analytic)
        #: Active holds by source host (uplink side) and destination
        #: host (downlink side).  A host appears in at most one of each.
        self._tx_holds: Dict[str, _Hold] = {}
        self._rx_holds: Dict[str, _Hold] = {}
        #: Deferred wire busy(+1)/idle(-1) marks from analytic holds, a
        #: min-heap on (time, tiebreak).  Holds overlap across disjoint
        #: port pairs, so marks must settle in global time order; the
        #: tiebreak keeps settlement stable (same-instant marks are
        #: order-insensitive for the depth-counted tracker).
        self._marks: List[Tuple[float, int, int]] = []
        self._mark_seq = 0
        # Settle lazy hold accounting before anyone reads utilisation.
        self.stats._pre_read = self._settle_now

    def attach(self, host: str, bandwidth: Optional[float] = None) -> None:
        """Register ``host``; ``bandwidth`` overrides the network default
        for this host's link (heterogeneous clusters, §5)."""
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth}")
        if host not in self._hosts:
            self._hosts[host] = _Port(self.sim, bandwidth)
        elif bandwidth is not None:
            self._hosts[host].bandwidth = bandwidth

    def host_bandwidth(self, host: str) -> float:
        """The effective link rate of ``host`` (bytes/second)."""
        port: _Port = self._require(host)
        return port.bandwidth if port.bandwidth is not None else self.spec.bandwidth

    def transfer(self, src: str, dst: str, nbytes: int) -> Event:
        message = Message(src=src, dst=dst, nbytes=nbytes, enqueued_at=self.sim.now)
        src_port: _Port = self._require(src)
        dst_port: _Port = self._require(dst)
        done = self.sim.event()
        # Every transfer claims one heap rank at creation.  The fast
        # path parks its single t_end entry there; both walks carry it
        # as the chain's age, which decides boundary-tie verdicts when
        # a hold is devirtualized at exactly one of its boundaries.
        chain_seq = self.sim.claim_seq()
        if not self._try_fast_hold(message, src_port, dst_port, done, chain_seq):
            self.sim.process(
                self._move(message, src_port, dst_port, done, chain_seq),
                name=f"xfer:{src}->{dst}",
            )
        return done

    def _make_station(self, host: str) -> _Port:
        return _Port(self.sim)

    def _wire_time(self, nbytes: int, bandwidth: Optional[float] = None) -> float:
        """Serialisation time including per-frame framing overhead."""
        spec = self.spec
        full, rest = divmod(nbytes, spec.mtu)
        frames = full + (1 if rest else 0)
        rate = bandwidth if bandwidth is not None else spec.bandwidth
        return (nbytes + frames * spec.frame_overhead) / rate

    def _chain_times(self, nbytes: int, src_port: _Port, dst_port: _Port):
        """(wire, drain) for one transfer — the event-driven floats."""
        spec = self.spec
        src_rate = src_port.bandwidth if src_port.bandwidth is not None else spec.bandwidth
        dst_rate = dst_port.bandwidth if dst_port.bandwidth is not None else spec.bandwidth
        wire = self._wire_time(nbytes, bandwidth=min(src_rate, dst_rate))
        last_frame = nbytes % spec.mtu or spec.mtu
        drain = (min(last_frame, nbytes) + spec.frame_overhead) / dst_rate
        return wire, drain

    # -- lazy wire accounting ------------------------------------------------
    def _push_mark(self, when: float, delta: int) -> None:
        self._mark_seq += 1
        heapq.heappush(self._marks, (when, self._mark_seq, delta))

    def _settle_marks(self, now: float) -> None:
        """Apply every deferred busy/idle mark due by ``now``, in time
        order — exactly the marks the event-driven walk would have made."""
        marks = self._marks
        wire = self.stats.wire
        while marks and marks[0][0] <= now:
            when, _, delta = heapq.heappop(marks)
            if delta > 0:
                wire.busy(when)
            else:
                wire.idle(when)

    def _settle_now(self) -> None:
        """``stats._pre_read`` hook."""
        self._settle_marks(self.sim.now)

    def _wire_busy(self) -> None:
        """Direct (event-driven) busy mark; settles deferred marks first
        so the depth-counted tracker always sees time move forward."""
        now = self.sim.now
        self._settle_marks(now)
        self.stats.wire.busy(now)

    def _wire_idle(self) -> None:
        now = self.sim.now
        self._settle_marks(now)
        self.stats.wire.idle(now)

    # -- analytic fast path --------------------------------------------------
    def _try_fast_hold(self, message: Message, src_port: _Port,
                       dst_port: _Port, done: Event, chain_seq: int) -> bool:
        """Serve the transfer analytically if its port pair is free.

        Eligibility is strict: fast path enabled, no partition between
        the endpoints, and both the source uplink and destination
        downlink completely free — no holder, no queued waiter, and no
        other analytic hold registered on the port.  An event-driven
        transfer that will *later* claim one of these ports (it is
        mid-hop, or stalled at a partition) is caught at its own
        ``acquire`` site, which devirtualizes this hold first.
        """
        if not self.analytic:
            return False
        src, dst = message.src, message.dst
        if self._crosses_partition(src, dst):
            return False
        if src in self._tx_holds or dst in self._rx_holds:
            return False
        if src_port.tx.in_use or src_port.tx.queue_length:
            return False
        if dst_port.rx.in_use or dst_port.rx.queue_length:
            return False
        wire, drain = self._chain_times(message.nbytes, src_port, dst_port)
        now = self.sim.now
        t_wire_end = now + wire
        t_hop_end = t_wire_end + self.spec.per_hop_latency
        t_end = t_hop_end + drain
        # The hold's one heap entry sits at the chain's creation rank;
        # devirtualized resumes re-enter the heap at this rank (see
        # _resume_move).
        hold = _Hold(
            message, src_port, dst_port, done,
            now, t_wire_end, t_hop_end, t_end, drain, chain_seq,
        )
        self._tx_holds[src] = hold
        self._rx_holds[dst] = hold
        self._push_mark(now, +1)
        self._push_mark(t_wire_end, -1)
        # One kernel event closes the hold; a callback (no process) keeps
        # the uncontended cost at a single heap entry per message.
        self.sim.at(t_end, seq=chain_seq).callbacks.append(
            lambda _event, hold=hold: self._complete_hold(hold)
        )
        return True

    def _pinned_seq(self, hold: _Hold, when: float) -> Optional[int]:
        """The rank for a resume's first pinned boundary: the hold's
        creation rank, unless that would collide with the original
        ``t_end`` entry still queued at the same (time, rank)."""
        return hold.seq if when < hold.t_end else None

    def _complete_hold(self, hold: _Hold) -> None:
        if hold.draining:
            # Devirtualized mid-drain: the rx was re-acquired on the
            # hold's behalf and this entry — whose creation-time rank
            # the event-driven chain shares — releases and delivers,
            # exactly as the untouched analytic completion would.
            hold.draining = False
            hold.active = False
            hold.dst_port.rx.release()
            self._settle_marks(self.sim.now)
            self._deliver(hold.message, hold.done)
            return
        if not hold.active:  # devirtualized meanwhile
            return
        hold.active = False
        del self._tx_holds[hold.message.src]
        del self._rx_holds[hold.message.dst]
        self._settle_marks(self.sim.now)
        self._deliver(hold.message, hold.done)

    def _devirt_tx(self, host: str, chain_seq: int) -> None:
        hold = self._tx_holds.get(host)
        if hold is not None:
            self._devirtualize(hold, chain_seq)

    def _devirt_rx(self, host: str, chain_seq: int) -> None:
        hold = self._rx_holds.get(host)
        if hold is not None:
            self._devirtualize(hold, chain_seq)

    def _devirtualize(self, hold: _Hold, chain_seq: int) -> None:
        """A second flow is about to touch a held port: reconstruct the
        exact event-driven state at this instant and resume there.

        The chain boundaries split ``now`` into three windows:

        * ``now < t_wire_end`` — mid-uplink: the source tx is held (the
          real ``Resource`` is re-acquired here, so the newcomer queues
          FIFO behind it exactly as the event-driven walk would);
        * before the hop ends — in the switch: both ports free; the
          resume process claims the downlink at ``t_hop_end`` through
          the ordinary ``rx.acquire`` so a racing flow wins or loses the
          port by arrival order, and a delayed grant stretches the drain
          start exactly as it would event-driven;
        * otherwise — draining: the destination rx is re-acquired on the
          hold's behalf (before the newcomer's own acquire can queue)
          and the original ``t_end`` heap entry releases and delivers.

        Boundary ties follow the event-driven ordering on three counts.
        A *strict* boundary hit (the newcomer's chain at exactly a hold
        boundary) is classified by chain age: both chains' same-instant
        heap entries fire in creation-rank order, so a hold *older* than
        the arriving chain (``hold.seq < chain_seq``) has already passed
        the boundary when the newcomer arrives, while a newer hold has
        not — e.g. a newer hold met at exactly its ``t_hop_end`` has not
        yet acquired the downlink, and must queue behind the older
        arrival just as the event-driven FIFO would make it.  A
        zero-latency hop created *at* the tie instant has likewise not
        fired — hence the ``t_hop_end == t_wire_end`` special case.  And
        the resume's first pinned boundary re-enters the heap at the
        hold's creation-time rank (``hold.seq``), not a fresh one: a
        sibling chain started at the same instant (two equal-size
        pageouts racing for one downlink) would otherwise out-rank the
        resume at a shared boundary and steal a port grant the
        event-driven FIFO gives to the older chain.  The wire marks
        pushed at hold creation stay queued: the uplink's timing was
        committed when the port was granted, so they are exact
        regardless of what happens after devirtualization.
        """
        now = self.sim.now
        del self._tx_holds[hold.message.src]
        del self._rx_holds[hold.message.dst]
        self._settle_marks(now)
        newer = chain_seq < hold.seq  # hold's boundary events fire after
        if now >= hold.t_end and not (now == hold.t_end and newer):
            # The completion callback lost the timestep tie: the message
            # is already fully drained; deliver, as the callback would.
            hold.active = False
            self._deliver(hold.message, hold.done)
            return
        if now < hold.t_wire_end or (now == hold.t_wire_end and newer):
            hold.active = False
            phase = "wire"
            grant = hold.src_port.tx.acquire()  # free by construction
        elif (now < hold.t_hop_end
              or (now == hold.t_hop_end and newer)
              or hold.t_hop_end == hold.t_wire_end):
            hold.active = False
            phase = "hop"
        else:
            # Draining: completion stays with the original t_end entry
            # (see _complete_hold), which already holds the chain's
            # creation-time rank — no resume process needed.
            hold.draining = True
            grant = hold.dst_port.rx.acquire()  # free by construction
            return
        self.sim.process(
            self._resume_move(hold, phase),
            name=f"xfer:{hold.message.src}->{hold.message.dst}",
        )

    def _resume_move(self, hold: _Hold, phase: str):
        """Continue a devirtualized transfer from ``phase``, pinned to
        the precomputed absolute boundaries (``sim.at``) so no float is
        ever re-derived from a relative delay.  The first pinned
        boundary inherits the hold's creation-time heap rank; later
        boundaries draw fresh ranks at the instants the event-driven
        walk would draw them."""
        sim = self.sim
        if phase == "wire":
            yield sim.at(hold.t_wire_end, seq=self._pinned_seq(hold, hold.t_wire_end))
            # The deferred idle mark at t_wire_end settles on its own.
            hold.src_port.tx.release()
            # Fresh rank: the event-driven hop timeout is allocated at
            # this firing position too.
            yield sim.at(hold.t_hop_end)
        else:  # hop
            yield sim.at(hold.t_hop_end, seq=self._pinned_seq(hold, hold.t_hop_end))
        self._devirt_rx(hold.message.dst, hold.seq)
        yield hold.dst_port.rx.acquire()
        try:
            yield sim.timeout(hold.drain)
        finally:
            hold.dst_port.rx.release()
        self._deliver(hold.message, hold.done)

    # -- event-driven walk ---------------------------------------------------
    def _move(self, message: Message, src_port: _Port, dst_port: _Port,
              done: Event, chain_seq: int):
        """Uplink serialisation, switch hop, downlink drain.

        The switch forwards frame-by-frame, so the downlink overlaps the
        uplink except for the final frame's drain time.  The downlink port
        is held for that drain so concurrent senders to one receiver still
        serialise where it matters.
        """
        yield from self._await_reachable(message.src, message.dst)
        wire, drain = self._chain_times(message.nbytes, src_port, dst_port)
        # An analytic hold cannot share a port with a second flow:
        # materialise its exact event-driven state before queueing.
        self._devirt_tx(message.src, chain_seq)
        yield src_port.tx.acquire()
        self._wire_busy()
        try:
            yield self.sim.timeout(wire)  # uplink serialisation
        finally:
            self._wire_idle()
            src_port.tx.release()
        yield self.sim.timeout(self.spec.per_hop_latency)
        self._devirt_rx(message.dst, chain_seq)
        yield dst_port.rx.acquire()
        try:
            yield self.sim.timeout(drain)
        finally:
            dst_port.rx.release()
        self._deliver(message, done)

    def _deliver(self, message: Message, done: Event) -> None:
        self.stats.delivered(message)
        if not done.triggered:
            done.succeed(message)
