"""Synthetic workloads for tests, microbenchmarks, and ablations."""

from __future__ import annotations

import random
from typing import Iterator, Optional

from .base import Ref, Workload, sweep, zigzag_passes

__all__ = ["SequentialScan", "UniformRandom", "ZipfAccess", "HotCold"]


class SequentialScan(Workload):
    """``passes`` zigzag sweeps over one region (pure streaming)."""

    name = "sequential-scan"
    _schedule_token_fields = ("n_pages", "passes", "write", "cpu_per_page")

    def __init__(
        self,
        n_pages: int,
        passes: int = 1,
        write: bool = False,
        cpu_per_page: float = 1e-4,
        page_size: int = 8192,
    ):
        super().__init__(page_size)
        self.n_pages = n_pages
        self.region = self.layout.add("data", n_pages * page_size)
        self.passes = passes
        self.write = write
        self.cpu_per_page = cpu_per_page

    def trace(self) -> Iterator[Ref]:
        yield from zigzag_passes(
            self.region.start_page,
            self.region.n_pages,
            self.passes,
            self.cpu_per_page,
            write=self.write,
        )


class UniformRandom(Workload):
    """``n_refs`` uniformly random page references."""

    name = "uniform-random"
    _schedule_token_fields = ("n_pages", "n_refs", "write_fraction", "cpu_per_page", "seed")

    def __init__(
        self,
        n_pages: int,
        n_refs: int,
        write_fraction: float = 0.5,
        cpu_per_page: float = 1e-4,
        seed: int = 0,
        page_size: int = 8192,
    ):
        if not 0 <= write_fraction <= 1:
            raise ValueError(f"write_fraction outside [0, 1]: {write_fraction}")
        super().__init__(page_size)
        self.n_pages = n_pages
        self.region = self.layout.add("data", n_pages * page_size)
        self.n_refs = n_refs
        self.write_fraction = write_fraction
        self.cpu_per_page = cpu_per_page
        self.seed = seed

    def trace(self) -> Iterator[Ref]:
        rng = random.Random(self.seed)
        for _ in range(self.n_refs):
            page = self.region.page(rng.randrange(self.region.n_pages))
            is_write = rng.random() < self.write_fraction
            yield (page, is_write, self.cpu_per_page)


class ZipfAccess(Workload):
    """Zipf-distributed references: a few pages dominate."""

    name = "zipf"
    _schedule_token_fields = ("n_pages", "n_refs", "skew", "write_fraction", "cpu_per_page", "seed")

    def __init__(
        self,
        n_pages: int,
        n_refs: int,
        skew: float = 1.1,
        write_fraction: float = 0.3,
        cpu_per_page: float = 1e-4,
        seed: int = 0,
        page_size: int = 8192,
    ):
        if skew <= 0:
            raise ValueError(f"skew must be positive: {skew}")
        super().__init__(page_size)
        self.n_pages = n_pages
        self.region = self.layout.add("data", n_pages * page_size)
        self.n_refs = n_refs
        self.skew = skew
        self.write_fraction = write_fraction
        self.cpu_per_page = cpu_per_page
        self.seed = seed

    def trace(self) -> Iterator[Ref]:
        rng = random.Random(self.seed)
        n = self.region.n_pages
        # Inverse-CDF sampling over the (truncated) Zipf weights.
        weights = [1.0 / (rank**self.skew) for rank in range(1, n + 1)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for w in weights:
            acc += w
            cumulative.append(acc / total)
        import bisect

        for _ in range(self.n_refs):
            rank = bisect.bisect_left(cumulative, rng.random())
            page = self.region.page(min(rank, n - 1))
            yield (page, rng.random() < self.write_fraction, self.cpu_per_page)


class HotCold(Workload):
    """A hot set referenced with probability ``hot_fraction``; classic
    working-set shape for replacement-policy ablations."""

    name = "hot-cold"
    _schedule_token_fields = ("hot_pages", "cold_pages", "n_refs", "hot_fraction", "cpu_per_page", "seed")

    def __init__(
        self,
        hot_pages: int,
        cold_pages: int,
        n_refs: int,
        hot_fraction: float = 0.9,
        cpu_per_page: float = 1e-4,
        seed: int = 0,
        page_size: int = 8192,
    ):
        if not 0 <= hot_fraction <= 1:
            raise ValueError(f"hot_fraction outside [0, 1]: {hot_fraction}")
        super().__init__(page_size)
        self.hot_pages = hot_pages
        self.cold_pages = cold_pages
        self.hot = self.layout.add("hot", hot_pages * page_size)
        self.cold = self.layout.add("cold", cold_pages * page_size)
        self.n_refs = n_refs
        self.hot_fraction = hot_fraction
        self.cpu_per_page = cpu_per_page
        self.seed = seed

    def trace(self) -> Iterator[Ref]:
        rng = random.Random(self.seed)
        for _ in range(self.n_refs):
            if rng.random() < self.hot_fraction:
                page = self.hot.page(rng.randrange(self.hot.n_pages))
            else:
                page = self.cold.page(rng.randrange(self.cold.n_pages))
            yield (page, rng.random() < 0.3, self.cpu_per_page)
