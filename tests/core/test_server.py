"""Unit tests for the memory server."""

import pytest

from repro.cluster import Workstation
from repro.config import DEC_ALPHA_3000_300, MachineSpec
from repro.errors import PageNotFound, ServerCrashed, ServerUnavailable
from repro.net import EthernetCsmaCd, ProtocolStack
from repro.sim import RngRegistry, Simulator
from repro.units import megabytes
from repro.core import MemoryServer
from repro.vm import page_bytes, xor_bytes


def make_server(sim, capacity=16, overflow=0.0, ram_mb=64):
    spec = MachineSpec(
        name="donor",
        ram_bytes=megabytes(ram_mb),
        kernel_resident_bytes=megabytes(8),
    )
    host = Workstation(sim, "donor-0", spec)
    net = EthernetCsmaCd(sim, rngs=RngRegistry(seed=3))
    net.attach("client")
    stack = ProtocolStack(net)
    return MemoryServer(host, stack, capacity_pages=capacity, overflow_fraction=overflow)


def drive(sim, gen):
    def body(gen):
        result = yield from gen
        return result

    return sim.run_until_complete(sim.process(body(gen)))


def test_server_grants_capacity_from_host():
    sim = Simulator()
    server = make_server(sim, capacity=32)
    assert server.capacity_pages == 32
    assert server.host.granted_pages == 32
    assert server.free_pages == 32


def test_overflow_fraction_grants_extra():
    sim = Simulator()
    server = make_server(sim, capacity=100, overflow=0.10)
    assert server.capacity_pages == 110


def test_server_rejected_when_host_too_small():
    sim = Simulator()
    spec = MachineSpec(
        name="tiny", ram_bytes=megabytes(9), kernel_resident_bytes=megabytes(8)
    )
    host = Workstation(sim, "tiny-0", spec)
    net = EthernetCsmaCd(sim, rngs=RngRegistry(seed=3))
    stack = ProtocolStack(net)
    with pytest.raises(ServerUnavailable):
        MemoryServer(host, stack, capacity_pages=4096)


def test_store_and_fetch_roundtrip():
    sim = Simulator()
    server = make_server(sim)
    data = page_bytes(1, 1, 64)

    def flow(server):
        yield from server.store("k1", data)
        got = yield from server.fetch("k1")
        return got

    assert drive(sim, flow(server)) == data
    assert server.stored_pages == 1
    assert server.counters["pageouts"] == 1
    assert server.counters["pageins"] == 1


def test_fetch_missing_key():
    sim = Simulator()
    server = make_server(sim)

    def flow(server):
        yield from server.fetch("ghost")

    with pytest.raises(PageNotFound):
        drive(sim, flow(server))


def test_store_beyond_capacity_unavailable_and_advises():
    sim = Simulator()
    server = make_server(sim, capacity=2)

    def fill(server):
        yield from server.store("a", None)
        yield from server.store("b", None)

    drive(sim, fill(server))
    assert server.free_pages == 0

    def overflow(server):
        yield from server.store("c", None)

    with pytest.raises(ServerUnavailable):
        drive(sim, overflow(server))
    assert server.advising


def test_free_clears_advising():
    sim = Simulator()
    server = make_server(sim, capacity=4)

    def fill(server):
        for key in "abcd":
            yield from server.store(key, None)

    drive(sim, fill(server))
    server.advising = True
    server.free(["a", "b"])
    assert not server.advising
    assert server.free_pages == 2


def test_xor_update_returns_delta():
    sim = Simulator()
    server = make_server(sim)
    old = page_bytes(1, 1, 64)
    new = page_bytes(1, 2, 64)

    def flow(server):
        yield from server.store("k", old)
        delta = yield from server.xor_update("k", new)
        stored = yield from server.fetch("k")
        return delta, stored

    delta, stored = drive(sim, flow(server))
    assert delta == xor_bytes(old, new)
    assert stored == new


def test_xor_update_missing_key():
    sim = Simulator()
    server = make_server(sim)

    def flow(server):
        yield from server.xor_update("ghost", b"x" * 64)

    with pytest.raises(PageNotFound):
        drive(sim, flow(server))


def test_xor_into_accumulates_parity():
    sim = Simulator()
    server = make_server(sim)
    a = page_bytes(1, 1, 64)
    b = page_bytes(2, 1, 64)

    def flow(server):
        yield from server.xor_into("p", a)
        yield from server.xor_into("p", b)
        got = yield from server.fetch("p")
        return got

    assert drive(sim, flow(server)) == xor_bytes(a, b)


def test_crash_loses_pages_and_raises():
    sim = Simulator()
    server = make_server(sim)

    def store(server):
        yield from server.store("k", None)

    drive(sim, store(server))
    server.crash()
    assert not server.is_alive
    assert server.stored_pages == 0

    def fetch(server):
        yield from server.fetch("k")

    with pytest.raises(ServerCrashed):
        drive(sim, fetch(server))


def test_free_on_crashed_server_is_noop():
    sim = Simulator()
    server = make_server(sim)
    server.crash()
    server.free(["anything"])  # must not raise


def test_restart_comes_back_empty():
    sim = Simulator()
    server = make_server(sim)

    def store(server):
        yield from server.store("k", None)

    drive(sim, store(server))
    server.crash()
    server.restart()
    assert server.is_alive
    assert not server.holds("k")


def test_host_pressure_sheds_pages_and_advises():
    sim = Simulator()
    server = make_server(sim, capacity=16, ram_mb=64)
    host = server.host

    def fill(server):
        for i in range(16):
            yield from server.store(i, None)

    drive(sim, fill(server))
    # Native demand surges enough to squeeze the grant.
    host.set_native_pages(host.total_pages - 8)
    assert server.advising
    assert server.counters["shed_to_disk"] > 0
    # Shed pages are still retrievable (from the host's disk, slower).

    def fetch(server):
        got = yield from server.fetch(0)
        return got

    drive(sim, fetch(server))
    assert server.counters["pageins_from_disk"] >= 1


def test_cpu_utilization_tracked():
    sim = Simulator()
    server = make_server(sim)

    def flow(server):
        for i in range(10):
            yield from server.store(i, None)
        yield sim.timeout(1.0)

    sim.run_until_complete(sim.process(flow(server)))
    util = server.cpu_utilization()
    assert 0 < util < 0.15  # §4.5: always under 15%


def test_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        make_server(sim, capacity=0)
    with pytest.raises(ValueError):
        make_server(sim, overflow=-0.1)
