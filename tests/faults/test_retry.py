"""RPC timeout/retry/backoff: the transport half of the chaos harness."""

import pytest

from repro.core import build_cluster
from repro.errors import RequestTimeout, ServerCrashed
from repro.net.protocol import RetrySpec


def make_cluster(**kwargs):
    defaults = dict(policy="no-reliability", n_servers=2)
    defaults.update(kwargs)
    return build_cluster(**defaults)


def drive(cluster, gen):
    def body(gen):
        result = yield from gen
        return result

    return cluster.sim.run_until_complete(cluster.sim.process(body(gen)))


def test_retry_spec_validation():
    with pytest.raises(ValueError, match="timeout"):
        RetrySpec(timeout=0.0)
    with pytest.raises(ValueError, match="attempt"):
        RetrySpec(max_attempts=0)
    with pytest.raises(ValueError, match="backoff"):
        RetrySpec(backoff_base=0.2, backoff_cap=0.1)


def test_partition_outlasting_budget_raises_request_timeout():
    """A partitioned path times out with RequestTimeout — a statement
    about the *path*, deliberately distinct from ServerCrashed."""
    cluster = make_cluster()
    cluster.stack.retry = RetrySpec(timeout=0.05, max_attempts=3)
    target = cluster.server_hosts[0].name
    cluster.network.partition({target})
    with pytest.raises(RequestTimeout) as err:
        drive(cluster, cluster.stack.send("client", target, 1024))
    assert not isinstance(err.value, ServerCrashed)
    assert cluster.stack.counters["rpc_timeouts"] == 3
    assert cluster.stack.counters["rpc_aborts"] == 1
    cluster.network.heal()


def test_transient_partition_is_ridden_out():
    """A partition shorter than the retry budget costs retries, not data."""
    cluster = make_cluster()
    cluster.stack.retry = RetrySpec(timeout=0.05, max_attempts=8)
    target = cluster.server_hosts[0].name
    cluster.network.partition({target})

    def heal_later():
        yield cluster.sim.timeout(0.12)
        cluster.network.heal()

    cluster.sim.process(heal_later(), name="healer")
    drive(cluster, cluster.stack.send("client", target, 1024))
    assert cluster.stack.counters["rpc_retries"] >= 1
    assert cluster.stack.counters["rpc_aborts"] == 0


def test_backoff_grows_and_caps():
    """Elapsed time across attempts reflects capped exponential backoff."""
    cluster = make_cluster()
    spec = RetrySpec(
        timeout=0.1,
        max_attempts=5,
        backoff_base=0.01,
        backoff_factor=2.0,
        backoff_cap=0.03,
    )
    cluster.stack.retry = spec
    target = cluster.server_hosts[0].name
    cluster.network.partition({target})
    start = cluster.sim.now
    with pytest.raises(RequestTimeout):
        drive(cluster, cluster.stack.send("client", target, 64))
    elapsed = cluster.sim.now - start
    # 5 attempts x 0.1 timeout + backoffs 0.01 + 0.02 + 0.03 + 0.03
    # (doubling, capped) + per-attempt CPU on each backoff wait.
    backoffs = 0.01 + 0.02 + 0.03 + 0.03
    expected = 5 * spec.timeout + backoffs + 4 * spec.per_attempt_cpu
    assert elapsed == pytest.approx(expected, rel=1e-6)
    cluster.network.heal()


def test_retries_charge_sender_cpu():
    cluster = make_cluster()
    cluster.stack.retry = RetrySpec(timeout=0.05, max_attempts=4)
    target = cluster.server_hosts[0].name
    busy_before = cluster.stack.cpu_account("client").busy_seconds
    cluster.network.partition({target})
    with pytest.raises(RequestTimeout):
        drive(cluster, cluster.stack.send("client", target, 64))
    charged = cluster.stack.cpu_account("client").busy_seconds - busy_before
    assert charged == pytest.approx(3 * cluster.stack.retry.per_attempt_cpu)
    cluster.network.heal()


def test_no_retry_spec_means_zero_overhead_path():
    """Without a RetrySpec the original fire-and-wait path is untouched."""
    cluster = make_cluster()
    assert cluster.stack.retry is None
    drive(cluster, cluster.stack.send("client", cluster.server_hosts[0].name, 1024))
    assert cluster.stack.counters["rpc_retries"] == 0
    assert cluster.stack.counters["rpc_timeouts"] == 0
