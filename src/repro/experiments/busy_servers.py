"""§4.5: using busy workstations as servers.

Three scenarios on the server hosts: idle (baseline), an X+vi editing
session, and a CPU-bound while(1) loop.  The paper found completion
times within ~1 s for the editor case, within 7% for the CPU-bound case,
and server CPU utilisation always under 15%.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..analysis.report import format_table
from ..cluster.load import CpuBoundLoop, EditorSession
from ..core.builder import Cluster
from ..workloads import Fft, Gauss, Mvec, Qsort
from .harness import run_policy

__all__ = ["run_busy_servers", "render_busy_servers"]

_FACTORIES = {"fft": Fft, "gauss": Gauss, "mvec": Mvec, "qsort": Qsort}

SCENARIOS = ("idle", "editor", "cpu-bound")


def _hook_for(scenario: str) -> Optional[Callable[[Cluster], None]]:
    if scenario == "idle":
        return None
    if scenario == "editor":
        def hook(cluster: Cluster) -> None:
            for host in cluster.server_hosts:
                EditorSession(host)
        return hook
    if scenario == "cpu-bound":
        def hook(cluster: Cluster) -> None:
            for host in cluster.server_hosts:
                CpuBoundLoop(host)
        return hook
    raise ValueError(f"unknown scenario {scenario!r}")


def run_busy_servers(
    apps=("fft", "gauss", "mvec", "qsort"),
    policy: str = "no-reliability",
) -> Dict[str, Dict[str, object]]:
    """Returns reports keyed [app][scenario], plus server CPU stats."""
    results: Dict[str, Dict[str, object]] = {}
    for app in apps:
        results[app] = {}
        for scenario in SCENARIOS:
            utilizations: list = []
            report = run_policy(
                _FACTORIES[app], policy, cluster_hook=_collect(scenario, utilizations)
            )
            results[app][scenario] = {
                "report": report,
                "server_cpu_utilizations": utilizations,
            }
    return results


def _collect(scenario, utilizations):
    captured = {}

    def hook(cluster: Cluster) -> None:
        inner = _hook_for(scenario)
        if inner is not None:
            inner(cluster)
        captured["servers"] = cluster.servers
        # Record utilisation lazily at workload end via a monitor process.

        def monitor():
            yield cluster.sim.timeout(1.0)
            while True:
                utilizations[:] = [s.cpu_utilization() for s in cluster.servers]
                yield cluster.sim.timeout(5.0)

        cluster.sim.process(monitor(), name="cpu-probe")

    return hook


def render_busy_servers(results: Dict[str, Dict[str, object]]) -> str:
    """Per-app, per-scenario table with the §4.5 comparisons."""
    rows = []
    for app, by_scenario in results.items():
        idle = by_scenario["idle"]["report"].etime
        for scenario in SCENARIOS:
            entry = by_scenario[scenario]
            etime = entry["report"].etime
            utils = entry["server_cpu_utilizations"]
            rows.append(
                [
                    app,
                    scenario,
                    f"{etime:.2f}",
                    f"{(etime - idle) / idle:+.1%}",
                    f"{max(utils):.1%}" if utils else "-",
                ]
            )
    return format_table(
        ["app", "server load", "etime (s)", "vs idle", "max server CPU"],
        rows,
        title="§4.5: busy workstations as servers (paper: editor within ~1 s, "
        "cpu-bound within 7%, server CPU < 15%)",
    )
