"""Transport-protocol layer: message exchange with CPU accounting.

The paper's latency decomposition (§4.3–4.4) splits each page transfer
into a *bandwidth-dependent* wire component (``btime``) and a fixed
*protocol-processing* CPU component (``pptime``, measured at 1.6 ms per
page for TCP/IP on the DEC Alpha).  This layer reproduces that split:

* it wraps a :class:`~repro.net.base.Network` and adds TCP/IP header bytes
  to every message;
* it charges the protocol CPU cost to the *initiating host's* CPU account
  and occupies simulated time for it (protocol processing is serial with
  the transfer on the 1996-era stack the paper measured);
* it exposes request/response helpers the pager and servers use.

The per-page CPU charge is attributed via :class:`CpuAccount` objects so
experiments can report server CPU utilisation (§4.5: "always less than
15%").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..config import ProtocolSpec
from ..errors import RequestTimeout
from ..sim import NULL_SPAN, Counter, Event, Simulator
from .base import Network

__all__ = ["CpuAccount", "ProtocolStack", "RetrySpec"]


@dataclass(frozen=True)
class RetrySpec:
    """RPC timeout/retry policy for one protocol stack.

    When installed (``stack.retry = RetrySpec(...)``) every message send
    races its delivery against a per-attempt timer; a silent loss (or a
    transport-checksum rejection) triggers a resend after a capped
    exponential backoff.  Each attempt beyond the first charges
    ``per_attempt_cpu`` to the sender (header rebuild, timer management)
    on top of the page's one-time protocol cost.  When the budget runs
    out the send fails with :class:`~repro.errors.RequestTimeout` — a
    deliberately different signal from ``ServerCrashed``: a timeout says
    nothing about the peer, only about the path.
    """

    #: Per-attempt acknowledgement deadline, seconds of simulated time.
    timeout: float = 0.25
    #: Total attempts (first send + retries) before aborting.
    max_attempts: int = 8
    #: First backoff delay; doubles per retry up to ``backoff_cap``.
    backoff_base: float = 0.005
    backoff_factor: float = 2.0
    backoff_cap: float = 0.1
    #: Sender CPU burned preparing each resend.
    per_attempt_cpu: float = 50e-6

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"retry timeout must be positive: {self.timeout}")
        if self.max_attempts < 1:
            raise ValueError(f"need at least one attempt: {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"bad backoff range: [{self.backoff_base}, {self.backoff_cap}]"
            )


class CpuAccount:
    """Accumulates CPU seconds consumed by an activity on one host."""

    def __init__(self, host: str):
        self.host = host
        self.busy_seconds = 0.0

    def charge(self, seconds: float) -> None:
        """Add ``seconds`` of CPU work to this account."""
        if seconds < 0:
            raise ValueError(f"negative CPU charge: {seconds}")
        self.busy_seconds += seconds

    def utilization(self, elapsed: float) -> float:
        """Busy fraction over ``elapsed`` wall-clock (simulated) seconds."""
        if elapsed <= 0:
            return 0.0
        return self.busy_seconds / elapsed


class ProtocolStack:
    """TCP/IP-like transport over an underlying network.

    Parameters
    ----------
    network:
        The frame-moving substrate (Ethernet or switched).
    spec:
        Protocol costs; defaults to the paper's measured TCP/IP numbers.
    """

    def __init__(self, network: Network, spec: Optional[ProtocolSpec] = None):
        self.network = network
        self.sim: Simulator = network.sim
        self.spec = spec or ProtocolSpec()
        self.counters = Counter()
        self._accounts: Dict[str, CpuAccount] = {}
        #: RPC timeout/retry policy; None (the default) keeps the
        #: original fire-and-wait wire path with zero added overhead.
        self.retry: Optional[RetrySpec] = None
        # Clustered-batch framing state (see begin_cluster): while a
        # cluster is open, page sends *originating at the cluster's host*
        # after the head pay only ``spec.batch_cpu_fraction`` of the
        # per-page protocol CPU.  Kept as a stack so framing nests: the
        # erasure fan-out opens a cluster around its fragment sends even
        # when the pipeline drain loop already holds one open.
        self._cluster_stack: list = []
        self._cluster_src: Optional[str] = None
        self._cluster_head_pending = False

    # ------------------------------------------------------------- batching
    def begin_cluster(self, src: str) -> None:
        """Open a clustered-batch frame (the write-behind drain path).

        Models OSF/1 pageout clustering: the drain daemon streams a batch
        of pages down one already-open connection, so only the first page
        pays the full per-message protocol cost; the rest pay
        ``spec.batch_cpu_fraction`` of it.  Only page sends whose source
        is ``src`` (the draining client) join the cluster — pagein
        responses and server-to-server recovery copies that happen to
        overlap the drain window keep their full cost.  Wire transfers
        stay one per page: each page is still a distinct frame train, and
        the fault injector still gets one independent drop/corrupt draw
        per page.

        Calls nest: an inner ``begin_cluster`` for the same (or a
        different) source rides inside the outer frame — the outer
        cluster's head/batch accounting simply continues when the inner
        frame closes.  Only the outermost open sets a fresh head.
        """
        self._cluster_stack.append((self._cluster_src,
                                    self._cluster_head_pending))
        if src != self._cluster_src:
            self._cluster_head_pending = True
        self._cluster_src = src

    def end_cluster(self) -> None:
        """Close the innermost clustered-batch frame.

        Restores the enclosing frame's source and head state (an outer
        drain-loop cluster keeps amortising after an inner erasure
        fan-out closes); the outermost close reverts sends to full cost.
        """
        if not self._cluster_stack:
            self._cluster_src = None
            self._cluster_head_pending = False
            return
        src, head_pending = self._cluster_stack.pop()
        if src == self._cluster_src:
            # Same source: the inner frame consumed the shared head.
            head_pending = head_pending and self._cluster_head_pending
        self._cluster_src = src
        self._cluster_head_pending = head_pending if src is not None else False

    # ------------------------------------------------------------------ CPU
    def cpu_account(self, host: str) -> CpuAccount:
        """The CPU account for ``host`` (created on first use)."""
        account = self._accounts.get(host)
        if account is None:
            account = CpuAccount(host)
            self._accounts[host] = account
        return account

    # ------------------------------------------------------------ transfers
    def _on_wire_bytes(self, payload: int) -> int:
        """Payload plus TCP/IP headers for each MTU-sized segment."""
        mtu_payload = max(1, self._segment_payload())
        segments = -(-payload // mtu_payload)  # ceil division
        return payload + segments * self.spec.header_bytes

    def _segment_payload(self) -> int:
        mtu = getattr(self.network.spec, "mtu", 1500)
        return mtu - self.spec.header_bytes

    def send(self, src: str, dst: str, payload: int, is_page: bool = False,
             span=NULL_SPAN, label: str = "transfer"):
        """Generator: move ``payload`` bytes from ``src`` to ``dst``.

        Charges protocol CPU on both endpoints when ``is_page`` is set
        (the paper's 1.6 ms covers the send+receive path of one page;
        we charge the time once — serially, on the sender's clock — and
        account half to each endpoint's CPU book-keeping).  With page
        compression configured (beyond-paper postscript), page payloads
        shrink by the compression ratio at extra CPU on each endpoint.

        ``span``/``label`` attribute the transfer's time to a request
        span's latency decomposition: the CPU part books under
        ``{label}.protocol`` (the paper's ``pptime``), the wire part
        under ``{label}.wire`` (``btime``).
        """
        if is_page:
            cpu = self.spec.per_page_cpu
            if self._cluster_src is not None and src == self._cluster_src:
                if self._cluster_head_pending:
                    self._cluster_head_pending = False
                    self.counters.add("batch_heads")
                else:
                    cpu *= self.spec.batch_cpu_fraction
                    self.counters.add("batched_page_sends")
            if self.spec.compression_ratio > 1.0:
                cpu += 2 * self.spec.compression_cpu  # compress + decompress
                payload = max(1, int(payload / self.spec.compression_ratio))
                self.counters.add("compressed_pages")
            self.cpu_account(src).charge(cpu / 2)
            self.cpu_account(dst).charge(cpu / 2)
            self.counters.add("page_transfers")
            # Measured pptime in integer microseconds: the pipelining
            # experiment reads this to show protocol-CPU amortisation.
            self.counters.add("protocol_cpu_us", int(round(cpu * 1e6)))
            span.phase(f"{label}.protocol")
            yield self.sim.timeout(cpu)
        self.counters.add("messages")
        nbytes = self._on_wire_bytes(payload)
        if self.retry is None:
            span.phase(f"{label}.wire")
            yield self.network.transfer(src, dst, nbytes)
        else:
            yield from self._transfer_with_retry(src, dst, nbytes, span, label)

    def _transfer_with_retry(self, src: str, dst: str, nbytes: int,
                             span, label: str):
        """Generator: one message, retried on timeout or frame rejection.

        Each attempt races delivery against ``retry.timeout``.  A
        delivery flagged ``corrupted`` (the transport checksum caught a
        damaged frame) is treated like a loss and resent immediately;
        silence waits out a capped exponential backoff first.  Backoff
        waits book under ``{label}.retry`` in the span's decomposition so
        retry stalls are separable from genuine wire time.
        """
        retry = self.retry
        sim = self.sim
        backoff = retry.backoff_base
        for attempt in range(1, retry.max_attempts + 1):
            span.phase(f"{label}.wire")
            done = self.network.transfer(src, dst, nbytes)
            fired = yield sim.any_of([done, sim.timeout(retry.timeout)])
            if done in fired:
                if not getattr(done.value, "corrupted", False):
                    return
                # Damaged on the wire: the frame checksum rejected it.
                self.counters.add("rpc_corrupt_rejected")
                sim.tracer.emit(
                    "net.rpc", "corrupt_rejected",
                    src=src, dst=dst, attempt=attempt,
                )
            else:
                self.counters.add("rpc_timeouts")
                sim.tracer.emit(
                    "net.rpc", "timeout", src=src, dst=dst, attempt=attempt,
                )
            if attempt >= retry.max_attempts:
                self.counters.add("rpc_aborts")
                sim.tracer.emit("net.rpc", "abort", src=src, dst=dst,
                                attempts=attempt)
                raise RequestTimeout(dst, attempts=attempt)
            self.counters.add("rpc_retries")
            self.cpu_account(src).charge(retry.per_attempt_cpu)
            span.phase(f"{label}.retry")
            yield sim.timeout(backoff + retry.per_attempt_cpu)
            backoff = min(backoff * retry.backoff_factor, retry.backoff_cap)

    def request_response(
        self,
        src: str,
        dst: str,
        request_payload: int,
        response_payload: int,
        response_is_page: bool = False,
        span=NULL_SPAN,
        label: str = "transfer",
    ):
        """Generator: small request then a response (e.g. a pagein).

        Returns after the response arrives at ``src``.
        """
        yield from self.send(src, dst, request_payload, span=span, label=label)
        yield from self.send(
            dst, src, response_payload, is_page=response_is_page,
            span=span, label=label,
        )

    def send_page(self, src: str, dst: str, page_size: int,
                  span=NULL_SPAN, label: str = "transfer"):
        """Generator: one page pageout-style transfer (data + control)."""
        yield from self.send(
            src, dst, page_size + self.spec.request_bytes, is_page=True,
            span=span, label=label,
        )

    def fetch_page(self, src: str, dst: str, page_size: int,
                   span=NULL_SPAN, label: str = "transfer"):
        """Generator: one pagein-style transfer (request out, page back)."""
        yield from self.request_response(
            src,
            dst,
            request_payload=self.spec.request_bytes,
            response_payload=page_size,
            response_is_page=True,
            span=span,
            label=label,
        )
