"""Page table: per-page state for one address space."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

__all__ = ["PageTableEntry", "PageTable"]


class PageTableEntry:
    """State bits for one virtual page."""

    __slots__ = ("page_id", "resident", "dirty", "referenced", "on_backing_store")

    def __init__(self, page_id: int):
        self.page_id = page_id
        self.resident = False
        self.dirty = False
        self.referenced = False
        #: True once the page has ever been paged out (so a fault needs a
        #: pagein; a never-written-out page is served zero-filled).
        self.on_backing_store = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flags = "".join(
            c
            for c, on in (
                ("R", self.resident),
                ("D", self.dirty),
                ("r", self.referenced),
                ("B", self.on_backing_store),
            )
            if on
        )
        return f"PTE({self.page_id}, {flags})"


class PageTable:
    """All page-table entries for one address space, created lazily."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[int, PageTableEntry] = {}

    def entry(self, page_id: int) -> PageTableEntry:
        """The entry for ``page_id``, created on first touch."""
        pte = self._entries.get(page_id)
        if pte is None:
            pte = PageTableEntry(page_id)
            self._entries[page_id] = pte
        return pte

    def get(self, page_id: int) -> Optional[PageTableEntry]:
        """The entry for ``page_id`` or None if never touched."""
        return self._entries.get(page_id)

    def resident_pages(self) -> Iterator[int]:
        """Ids of currently resident pages."""
        return (p for p, e in self._entries.items() if e.resident)

    @property
    def resident_count(self) -> int:
        return sum(1 for e in self._entries.values() if e.resident)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._entries
