"""Record and replay page-reference traces.

The pager only sees the fault stream, so a recorded trace is a complete,
portable workload description: capture a trace once (from a model or a
real system's page-fault log), then replay it against any paging
configuration.  The file format is a plain text header plus one line per
reference — diff-able, greppable, and stable across versions.

Format::

    # repro-trace v1
    # name: gauss
    # page_size: 8192
    <page_id> <R|W> <cpu_microseconds>
    ...
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterator, Union

from .base import Ref, Workload

__all__ = ["save_trace", "load_trace", "RecordedWorkload"]

_MAGIC = "# repro-trace v1"


def save_trace(
    workload: Workload, path: Union[str, Path], limit: int = None
) -> int:
    """Write ``workload``'s trace to ``path``; returns references written."""
    path = Path(path)
    written = 0
    with path.open("w") as f:
        f.write(f"{_MAGIC}\n")
        f.write(f"# name: {workload.name}\n")
        f.write(f"# page_size: {workload.page_size}\n")
        for page_id, is_write, cpu in workload.trace():
            f.write(f"{page_id} {'W' if is_write else 'R'} {cpu * 1e6:.3f}\n")
            written += 1
            if limit is not None and written >= limit:
                break
    return written


class RecordedWorkload(Workload):
    """A workload replayed from a trace file."""

    def __init__(self, path: Union[str, Path]):
        path = Path(path)
        name, page_size, refs = self._parse(path)
        super().__init__(page_size)
        self.name = name
        self._refs = refs
        if refs:
            max_page = max(page for page, _, _ in refs)
            self.layout.add("recorded", (max_page + 1) * page_size)

    @staticmethod
    def _parse(path: Path):
        name = path.stem
        page_size = 8192
        refs = []
        with path.open() as f:
            first = f.readline().rstrip("\n")
            if first != _MAGIC:
                raise ValueError(
                    f"{path}: not a repro trace (missing {_MAGIC!r} header)"
                )
            for lineno, line in enumerate(f, start=2):
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    body = line[1:].strip()
                    if body.startswith("name:"):
                        name = body[5:].strip()
                    elif body.startswith("page_size:"):
                        page_size = int(body[10:].strip())
                    continue
                parts = line.split()
                if len(parts) != 3 or parts[1] not in ("R", "W"):
                    raise ValueError(f"{path}:{lineno}: malformed reference {line!r}")
                refs.append((int(parts[0]), parts[1] == "W", float(parts[2]) / 1e6))
        return name, page_size, refs

    def trace(self) -> Iterator[Ref]:
        return iter(self._refs)

    def __len__(self) -> int:
        return len(self._refs)


def load_trace(path: Union[str, Path]) -> RecordedWorkload:
    """Load a trace file as a replayable workload."""
    return RecordedWorkload(path)
