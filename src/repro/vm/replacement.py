"""Page-replacement policies.

DEC OSF/1's VM used a global FIFO-with-second-chance scheme; we provide
FIFO, LRU, and Clock (second chance) behind one interface so experiments
can ablate the choice.  The policy only tracks *resident* pages and picks
victims; residency bookkeeping lives in the machine.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Optional

__all__ = ["ReplacementPolicy", "FifoReplacement", "LruReplacement", "ClockReplacement", "make_replacement"]


class ReplacementPolicy:
    """Interface: track resident pages, surrender a victim on demand."""

    name = "abstract"

    def insert(self, page_id: int) -> None:
        """A page became resident."""
        raise NotImplementedError

    def touch(self, page_id: int, is_write: bool = False) -> None:
        """A resident page was referenced."""
        raise NotImplementedError

    def evict(self) -> int:
        """Choose and remove a victim; returns its page id."""
        raise NotImplementedError

    def remove(self, page_id: int) -> None:
        """A page left residency by other means (e.g. process exit)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class FifoReplacement(ReplacementPolicy):
    """Evict the page resident longest, regardless of references."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue: Deque[int] = deque()
        self._members: set = set()

    def insert(self, page_id: int) -> None:
        if page_id in self._members:
            raise ValueError(f"page {page_id} already resident")
        self._queue.append(page_id)
        self._members.add(page_id)

    def touch(self, page_id: int, is_write: bool = False) -> None:
        if page_id not in self._members:
            raise KeyError(f"page {page_id} is not resident")

    def evict(self) -> int:
        if not self._queue:
            raise IndexError("no resident pages to evict")
        victim = self._queue.popleft()
        self._members.discard(victim)
        return victim

    def remove(self, page_id: int) -> None:
        if page_id in self._members:
            self._members.discard(page_id)
            self._queue.remove(page_id)

    def __len__(self) -> int:
        return len(self._members)


class LruReplacement(ReplacementPolicy):
    """Evict the least recently used page (exact LRU stack)."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def insert(self, page_id: int) -> None:
        if page_id in self._order:
            raise ValueError(f"page {page_id} already resident")
        self._order[page_id] = None

    def touch(self, page_id: int, is_write: bool = False) -> None:
        try:
            self._order.move_to_end(page_id)
        except KeyError:
            raise KeyError(f"page {page_id} is not resident") from None

    def evict(self) -> int:
        if not self._order:
            raise IndexError("no resident pages to evict")
        victim, _ = self._order.popitem(last=False)
        return victim

    def remove(self, page_id: int) -> None:
        self._order.pop(page_id, None)

    def __len__(self) -> int:
        return len(self._order)


class ClockReplacement(ReplacementPolicy):
    """Second-chance FIFO: referenced pages get one reprieve per lap.

    Closest to what DEC OSF/1 actually ran, and the default for the
    reproduction experiments.
    """

    name = "clock"

    def __init__(self) -> None:
        self._ring: Deque[int] = deque()
        self._referenced: Dict[int, bool] = {}

    def insert(self, page_id: int) -> None:
        if page_id in self._referenced:
            raise ValueError(f"page {page_id} already resident")
        self._ring.append(page_id)
        self._referenced[page_id] = False

    def touch(self, page_id: int, is_write: bool = False) -> None:
        if page_id not in self._referenced:
            raise KeyError(f"page {page_id} is not resident")
        self._referenced[page_id] = True

    def evict(self) -> int:
        if not self._ring:
            raise IndexError("no resident pages to evict")
        while True:
            candidate = self._ring.popleft()
            if self._referenced[candidate]:
                self._referenced[candidate] = False
                self._ring.append(candidate)
            else:
                del self._referenced[candidate]
                return candidate

    def remove(self, page_id: int) -> None:
        if page_id in self._referenced:
            del self._referenced[page_id]
            self._ring.remove(page_id)

    def __len__(self) -> int:
        return len(self._referenced)


_POLICIES = {
    "fifo": FifoReplacement,
    "lru": LruReplacement,
    "clock": ClockReplacement,
}


def make_replacement(name: str) -> ReplacementPolicy:
    """Construct a replacement policy by name ('fifo', 'lru', 'clock')."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
