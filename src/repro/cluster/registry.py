"""The server registry — the paper's "common file" of participants.

"All workstations that participate in remote memory paging are registered
in a common file" (§2.1).  Clients consult the registry to pick the most
promising server, to find replacements when a server fills up or crashes,
and to discover newly freed memory for re-replication.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

__all__ = ["ServerRegistry"]


class ServerRegistry:
    """Directory of memory servers with load-aware selection.

    Servers are any objects exposing ``name``, ``is_alive``,
    ``free_pages``, and ``advising`` (True when the server has asked
    clients to stop sending pages).
    """

    def __init__(self) -> None:
        self._servers: List[object] = []

    def register(self, server: object) -> None:
        """Add a server; re-registering the same name replaces it."""
        for required in ("name", "is_alive", "free_pages"):
            if not hasattr(server, required):
                raise TypeError(f"server lacks required attribute {required!r}")
        self._servers = [s for s in self._servers if s.name != server.name]
        self._servers.append(server)

    def unregister(self, name: str) -> None:
        """Remove the server named ``name`` (no-op if absent)."""
        self._servers = [s for s in self._servers if s.name != name]

    def __len__(self) -> int:
        return len(self._servers)

    def __iter__(self):
        return iter(self._servers)

    def get(self, name: str) -> Optional[object]:
        """The server named ``name``, or None."""
        for server in self._servers:
            if server.name == name:
                return server
        return None

    def candidates(self, exclude: Iterable[str] = ()) -> List[object]:
        """Live, non-advising servers with free memory, best first."""
        excluded = set(exclude)
        usable = [
            s
            for s in self._servers
            if s.is_alive
            and s.name not in excluded
            and not getattr(s, "advising", False)
            and s.free_pages > 0
        ]
        return sorted(usable, key=lambda s: s.free_pages, reverse=True)

    def best(
        self, min_pages: int = 1, exclude: Iterable[str] = ()
    ) -> Optional[object]:
        """The most promising server with at least ``min_pages`` free."""
        for server in self.candidates(exclude=exclude):
            if server.free_pages >= min_pages:
                return server
        return None

    def pick_distinct(
        self, count: int, min_pages: int = 1, exclude: Iterable[str] = ()
    ) -> List[object]:
        """``count`` distinct servers, best first; raises if unavailable."""
        chosen: List[object] = []
        names = set(exclude)
        while len(chosen) < count:
            server = self.best(min_pages=min_pages, exclude=names)
            if server is None:
                raise LookupError(
                    f"registry has only {len(chosen)} of {count} requested servers "
                    f"with {min_pages}+ free pages"
                )
            chosen.append(server)
            names.add(server.name)
        return chosen
