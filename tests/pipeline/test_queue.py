"""Write-behind queue unit tests against a scripted fake pager.

The fake records exactly what the queue hands the reliability policy, so
these tests pin the queue's contracts in isolation: zero-time admission,
in-place coalescing, FIFO batch drain, backlog back-pressure, release
semantics, and the disk fallbacks.
"""

import pytest

from repro.errors import RequestTimeout
from repro.pipeline import PageoutQueue, PipelineSpec
from repro.sim import Counter, Simulator, Tally


class FakeStack:
    def __init__(self):
        self.clusters = []
        self._open = None

    def begin_cluster(self, src):
        self._open = []

    def end_cluster(self):
        self.clusters.append(self._open)
        self._open = None

    def record(self, page_id):
        if self._open is not None:
            self._open.append(page_id)


class FakePolicy:
    def __init__(self, stack):
        self.stack = stack
        self.client_host = "client"


class FakePager:
    """Just enough pager surface for PageoutQueue._transmit."""

    def __init__(self, sim, send_time=0.001, fail=None):
        self.sim = sim
        self.policy = FakePolicy(FakeStack())
        self.counters = Counter()
        self.checksums = {}
        self._on_disk = set()
        self._disk_contents = {}
        self.sent = []
        self.disk = []
        self.settled = []
        self.send_time = send_time
        self.fail = fail or {}

    def _network_degraded(self):
        return False

    def _policy_pageout(self, page_id, contents, span=None):
        yield self.sim.timeout(self.send_time)
        exc = self.fail.pop(page_id, None)
        if exc is not None:
            raise exc
        self.policy.stack.record(page_id)
        self.sent.append((page_id, contents))

    def _disk_pageout(self, page_id, contents):
        yield self.sim.timeout(self.send_time)
        self.disk.append((page_id, contents))
        self._on_disk.add(page_id)

    def _observe_transfer(self, elapsed):
        pass

    def _pageout_settled(self, page_id, contents):
        self.settled.append(page_id)


def make_queue(sim, pager, **spec_kwargs):
    spec = PipelineSpec(**{"window": 4, **spec_kwargs})
    return PageoutQueue(pager, spec, Counter(), Tally())


def drive(sim, gen):
    sim.process(gen)
    sim.run()


def test_enqueue_completes_in_zero_sim_time():
    sim = Simulator()
    pager = FakePager(sim)
    queue = make_queue(sim, pager)
    stamps = []

    def producer():
        yield from queue.enqueue(1, b"a")
        stamps.append(sim.now)

    drive(sim, producer())
    assert stamps == [0.0]  # admitted instantly, transmitted later
    assert pager.sent == [(1, b"a")]
    assert queue.pending == 0


def test_coalesce_transmits_only_newest_version():
    sim = Simulator()
    pager = FakePager(sim)
    queue = make_queue(sim, pager)

    def producer():
        yield from queue.enqueue(7, b"v1")
        yield from queue.enqueue(8, b"other")
        yield from queue.enqueue(7, b"v2")  # re-dirty while queued

    drive(sim, producer())
    assert pager.sent == [(7, b"v2"), (8, b"other")]
    assert queue.counters["coalesced"] == 1
    assert queue.counters["enqueued"] == 2


def test_fifo_order_and_window_batching():
    sim = Simulator()
    pager = FakePager(sim)
    queue = make_queue(sim, pager, window=2)

    def producer():
        for page_id in (1, 2, 3, 4, 5):
            yield from queue.enqueue(page_id, bytes([page_id]))

    drive(sim, producer())
    assert [page_id for page_id, _ in pager.sent] == [1, 2, 3, 4, 5]
    assert queue.counters["drain_batches"] == 3  # 2 + 2 + 1
    assert queue.counters["drained_pages"] == 5
    # Every batch was bracketed by the protocol stack's cluster framing.
    assert pager.policy.stack.clusters == [[1, 2], [3, 4], [5]]


def test_backlog_blocks_producers():
    sim = Simulator()
    pager = FakePager(sim)
    queue = make_queue(sim, pager, window=1, backlog=2)
    admitted = []

    def producer():
        for page_id in range(6):
            yield from queue.enqueue(page_id, b"x")
            admitted.append((page_id, sim.now))

    drive(sim, producer())
    assert [page_id for page_id, _ in pager.sent] == list(range(6))
    assert queue.counters["backlog_stalls"] > 0
    # The first two fit the backlog instantly; later ones had to wait for
    # the drainer to make room.
    assert admitted[0][1] == 0.0 and admitted[1][1] == 0.0
    assert admitted[-1][1] > 0.0


def test_release_drops_queued_entry():
    sim = Simulator()
    pager = FakePager(sim)
    queue = make_queue(sim, pager)

    def producer():
        yield from queue.enqueue(1, b"keep")
        yield from queue.enqueue(2, b"dead")
        queue.release(2)

    drive(sim, producer())
    assert pager.sent == [(1, b"keep")]
    assert queue.counters["released_queued"] == 1


def test_lookup_prefers_queued_over_sending():
    sim = Simulator()
    pager = FakePager(sim, send_time=0.01)
    queue = make_queue(sim, pager, window=1)
    seen = []

    def producer():
        yield from queue.enqueue(1, b"v1")
        yield sim.timeout(0.005)  # drainer is mid-transmit of v1
        assert queue.lookup(1).sending
        yield from queue.enqueue(1, b"v2")  # new entry, not a coalesce
        seen.append(queue.lookup(1).contents)

    drive(sim, producer())
    assert seen == [b"v2"]  # queued (newer) wins over sending
    assert pager.sent == [(1, b"v1"), (1, b"v2")]
    assert queue.counters["coalesced"] == 0


def test_request_timeout_falls_back_to_disk_and_settles():
    sim = Simulator()
    pager = FakePager(sim, fail={3: RequestTimeout("server-0", attempts=3)})
    queue = make_queue(sim, pager)

    def producer():
        yield from queue.enqueue(3, b"doomed")
        yield from queue.enqueue(4, b"fine")
        yield from queue.wait_idle()

    drive(sim, producer())
    assert pager.disk == [(3, b"doomed")]
    assert pager.sent == [(4, b"fine")]
    assert pager.counters["timeout_fallback_pageouts"] == 1
    assert sorted(pager.settled) == [3, 4]  # every entry settles, even fallbacks
    assert queue.pending == 0


def test_wait_idle_blocks_until_everything_settled():
    sim = Simulator()
    pager = FakePager(sim, send_time=0.01)
    queue = make_queue(sim, pager, window=2)
    done = []

    def producer():
        for page_id in range(4):
            yield from queue.enqueue(page_id, b"x")
        yield from queue.wait_idle()
        done.append(sim.now)

    drive(sim, producer())
    assert queue.pending == 0
    assert len(pager.sent) == 4
    assert done and done[0] == pytest.approx(0.04)
