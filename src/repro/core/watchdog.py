"""Crash detection from load-report silence.

The pager normally discovers a crash when a request fails (§2.2), which
leaves lost pages unprotected until the client happens to touch that
server.  Since servers report their load periodically (§3.2), silence is
a signal: a :class:`Watchdog` watches the client's
:class:`~repro.core.load_reports.ClusterView` and, when a server has
been quiet for ``suspect_after`` intervals, declares it crashed and runs
the policy's recovery *proactively* — restoring redundancy before the
next fault would trip over it.
"""

from __future__ import annotations

from typing import Optional

from ..errors import RecoveryError, RequestTimeout, ServerCrashed
from ..sim import Interrupt, Process, Simulator
from .client import RemoteMemoryPager
from .load_reports import ClusterView

__all__ = ["Watchdog"]

#: Size of the are-you-alive probe sent before declaring a crash.
PROBE_BYTES = 32


class Watchdog:
    """Declare silent servers crashed and trigger proactive recovery."""

    def __init__(
        self,
        pager: RemoteMemoryPager,
        view: ClusterView,
        report_interval: float,
        suspect_after: float = 3.0,
        poll: Optional[float] = None,
    ):
        if report_interval <= 0 or suspect_after <= 1:
            raise ValueError(
                "report_interval must be positive and suspect_after > 1 "
                "(declaring a crash within one interval would misfire on "
                "ordinary report jitter)"
            )
        self.pager = pager
        self.view = view
        self.report_interval = report_interval
        self.suspect_after = suspect_after
        self.sim: Simulator = pager.sim
        self.detections = []
        #: (time, server) pairs where a declared server resumed reporting
        #: before being retired — i.e. it flapped rather than died.
        self.rearms = []
        #: (time, server) pairs where a silent server answered the probe
        #: — its reports were lost or delayed, not its host.
        self.false_alarms = []
        self._declared: dict = {}
        self.process: Process = self.sim.process(self._run(), name="watchdog")

    @property
    def _deadline(self) -> float:
        return self.report_interval * self.suspect_after

    def _run(self):
        try:
            # Give every reporter one interval before expecting anything.
            yield self.sim.timeout(self.report_interval)
            while True:
                yield self.sim.timeout(self.report_interval)
                # Each silence is acted on exactly once: a successful
                # recovery removes the server from the policy's set, and
                # ``_declared`` latches servers whose recovery failed (no
                # redundancy) so they are not re-declared every interval.
                # The latch re-arms only when the server *reports again*
                # — a flapping server that rejoins is not double-recovered.
                for server in list(self.pager.policy.servers):
                    name = server.name
                    if self.view.report_for(name) is None:
                        continue  # never reported (not monitored)
                    age = self.view.age(name)
                    if name in self._declared:
                        if age <= self._deadline:
                            del self._declared[name]  # rejoined: re-arm
                            self.rearms.append((self.sim.now, name))
                            self.sim.tracer.emit("watchdog", "rearm", server=name)
                        continue
                    if age > self._deadline:
                        self._declared[name] = self.sim.now
                        yield from self._declare_crashed(server)
        except Interrupt:
            return

    def _declare_crashed(self, server):
        """A server went silent: probe it, then run recovery if it's dead.

        Silence is only a *suspicion* — on a lossy wire, lost or delayed
        reports look identical to death from the client's chair, and
        recovering a live server would wrongly retire good memory.  A
        small probe settles it: an answer re-arms the suspicion; no
        answer confirms the crash.
        """
        stack = self.pager.policy.stack
        try:
            yield from stack.send(
                self.pager.policy.client_host, server.host.name, PROBE_BYTES
            )
            alive = server.is_alive
        except RequestTimeout:
            alive = False
        if alive:
            # False alarm: drop the latch so continued silence probes
            # again next interval (the lost report may still be en route).
            self._declared.pop(server.name, None)
            self.false_alarms.append((self.sim.now, server.name))
            self.sim.tracer.emit("watchdog", "false_alarm", server=server.name)
            return
        self.detections.append((self.sim.now, server.name))
        try:
            yield from self.pager._handle_crash(ServerCrashed(server.name))
        except RecoveryError:
            # Unrecoverable policy (no redundancy): nothing a watchdog
            # can do beyond noting the loss; requests will surface it.
            pass
        except RequestTimeout:
            # Recovery traffic aborted on the lossy path; the hole is
            # still open and the next faulting request will retry it.
            pass

    def stop(self) -> None:
        """Stop monitoring."""
        if self.process.is_alive:
            self.process.interrupt("watchdog-stop")
