"""Content fast path: memoised pages, shared zero page, CRC-once.

The fast path may only change wall-clock, never values: every test here
compares the cached primitives against the uncached originals.
"""

import zlib

import pytest

from repro.vm.page import (
    clear_fastpath_caches,
    fastpath_stats,
    page_bytes,
    page_checksum,
    set_fastpath,
    zero_page,
)


@pytest.fixture(autouse=True)
def _restore_fastpath():
    previous = set_fastpath(True)
    yield
    set_fastpath(previous)


def test_page_bytes_identity_shared_on_hits():
    a = page_bytes(11, 2, 256)
    b = page_bytes(11, 2, 256)
    assert a is b  # shared immutable object: `==` short-circuits on `is`


def test_page_bytes_values_match_uncached():
    cached = page_bytes(3, 7, 4096)
    set_fastpath(False)
    assert page_bytes(3, 7, 4096) == cached
    assert page_bytes(3, 7, 4096) is not page_bytes(3, 7, 4096)


def test_zero_page_shared_and_correct():
    assert zero_page(64) is zero_page(64)
    assert zero_page(64) == b"\x00" * 64
    set_fastpath(False)
    assert zero_page(64) == b"\x00" * 64


def test_checksum_matches_crc32_and_uncached_path():
    payload = page_bytes(5, 1, 8192)
    expected = zlib.crc32(payload) & 0xFFFFFFFF
    assert page_checksum(payload) == expected
    assert page_checksum(payload) == expected  # memo hit, same value
    set_fastpath(False)
    assert page_checksum(payload) == expected


def test_checksum_distinguishes_equal_length_payloads():
    a = page_bytes(1, 1, 512)
    b = page_bytes(1, 2, 512)
    assert page_checksum(a) != page_checksum(b)


def test_checksum_of_fresh_unshared_bytes():
    # Payloads that never came from the cache (e.g. corrupted ones) must
    # still checksum correctly despite the id-based memo.
    raw = bytes(range(256))
    assert page_checksum(raw) == zlib.crc32(raw) & 0xFFFFFFFF
    mutated = bytes([raw[0] ^ 1]) + raw[1:]
    assert page_checksum(mutated) != page_checksum(raw)


def test_set_fastpath_returns_previous_and_flushes():
    assert set_fastpath(False) is True
    assert set_fastpath(True) is False
    page_bytes(9, 9, 128)
    stats = fastpath_stats()
    assert stats["enabled"] and stats["page_bytes_entries"] >= 1
    clear_fastpath_caches()
    stats = fastpath_stats()
    assert stats["page_bytes_entries"] == 0
    assert stats["checksum_entries"] == 0
    assert stats["zero_page_sizes"] == 0
