"""Unit tests for the Figure-1 idle-memory trace."""

import pytest

from repro.cluster import IdleMemoryTrace
from repro.units import days, hours


def test_defaults_match_paper_lab():
    trace = IdleMemoryTrace()
    assert trace.n_workstations == 16
    assert trace.total_mb == 800.0


def test_floor_respected_all_week():
    trace = IdleMemoryTrace()
    assert all(mb >= 300 for _, mb in trace.series(step=hours(0.5)))


def test_nights_higher_than_business_hours():
    trace = IdleMemoryTrace()
    # Monday (trace starts Thursday): 3am vs 11am.
    monday = days(4)
    assert trace.free_mb(monday + hours(3)) > trace.free_mb(monday + hours(11))


def test_weekend_stays_high():
    trace = IdleMemoryTrace()
    saturday_noon = days(2) + hours(12)
    assert trace.free_mb(saturday_noon) > 650


def test_weekday_names_start_thursday():
    trace = IdleMemoryTrace()
    assert trace.weekday_name(0) == "Thursday"
    assert trace.weekday_name(days(2)) == "Saturday"
    assert trace.weekday_name(days(6) + hours(23)) == "Wednesday"
    assert trace.is_weekend(days(3))      # Sunday
    assert not trace.is_weekend(days(4))  # Monday


def test_sampling_is_deterministic():
    a = IdleMemoryTrace(seed=42)
    b = IdleMemoryTrace(seed=42)
    t = days(1) + hours(14)
    assert a.free_mb(t) == b.free_mb(t)


def test_different_seeds_differ():
    t = days(1) + hours(14)
    assert IdleMemoryTrace(seed=1).free_mb(t) != IdleMemoryTrace(seed=2).free_mb(t)


def test_free_pages_conversion():
    trace = IdleMemoryTrace()
    t = hours(3)
    assert trace.free_pages(t) == int(trace.free_mb(t) * (1 << 20) / 8192)


def test_series_length_and_summary():
    trace = IdleMemoryTrace()
    series = trace.series(step=hours(6))
    assert len(series) == 7 * 4 + 1
    summary = trace.summary()
    assert 300 <= summary["min_mb"] < summary["mean_mb"] < summary["max_mb"] <= 800


def test_validation():
    with pytest.raises(ValueError):
        IdleMemoryTrace(n_workstations=0)
    with pytest.raises(ValueError):
        IdleMemoryTrace(busy_idle_fraction=0.9, night_idle_fraction=0.5)
    trace = IdleMemoryTrace()
    with pytest.raises(ValueError):
        trace.free_mb(-1.0)
    with pytest.raises(ValueError):
        trace.series(step=0)
