"""Erasure-coded reliability (ISSUE 8 acceptance criteria).

Three layers of pinning:

* **codec properties** (hypothesis): the GF(256) Reed-Solomon stripe
  reconstructs the original page from *any* k of its k+m fragments,
  byte-identically, for arbitrary page contents and shapes; a corrupted
  fragment inside the decode subset is always caught by the pager's
  end-to-end checksum (never silently wrong bytes).
* **campaign invariants**: ec-2-1 and ec-4-2 come through the heavy and
  correlated chaos campaigns (multi-server crash_group, crash-during-
  recovery cascade, amnesiac flap, rot burst) CLEAN on both the
  synchronous and pipelined datapaths, with the degraded-read and
  rebuild accounting proving the redundancy actually worked.
* **fast-path identity**: the trace-compiled run of an erasure-coded
  cell returns the same report as the interpreted run.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compile import set_compile_enabled
from repro.config import MachineSpec
from repro.core import build_cluster
from repro.core.policies import PlacementGroupManager, parse_ec_policy
from repro.core.policies.gf256 import (
    ReedSolomon,
    join_fragments,
    split_page,
)
from repro.errors import ConfigurationError, ReproError
from repro.faults import ChaosController, FaultPlan, check_page_integrity
from repro.vm.page import page_checksum
from repro.workloads import SequentialScan

SMALL = MachineSpec(
    name="test-small",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)


def build_ec(policy, pipelined=False, **overrides):
    shape = parse_ec_policy(policy)
    kwargs = dict(
        machine_spec=SMALL,
        n_servers=max(2 * sum(shape), 8),
        content_mode=True,
        seed=3,
        server_capacity_pages=600,
    )
    if pipelined:
        kwargs.update(pipeline_window=4, pipeline_prefetch=4)
    kwargs.update(overrides)
    return build_cluster(policy=policy, **kwargs)


# --------------------------------------------------------------------------
# Codec properties.
# --------------------------------------------------------------------------

_SHAPES = st.sampled_from([(2, 1), (3, 2), (4, 2), (2, 2), (5, 3)])


@settings(max_examples=30, deadline=None)
@given(
    shape=_SHAPES,
    contents=st.binary(min_size=0, max_size=256),
    subset_seed=st.integers(min_value=0, max_value=2**31),
)
def test_any_k_fragments_roundtrip(shape, contents, subset_seed):
    """Any k of the k+m fragments reproduce the page byte-identically."""
    import itertools
    import random

    k, m = shape
    page_size = 64  # small pages keep the property fast; math is per-byte
    page = contents[:page_size].ljust(page_size, b"\0")
    fragment_size = -(-page_size // k)
    data = split_page(page, k, fragment_size)
    rs = ReedSolomon(k, m)
    parity = rs.encode(data)
    fragments = list(data) + list(parity)

    all_subsets = list(itertools.combinations(range(k + m), k))
    rng = random.Random(subset_seed)
    for subset in rng.sample(all_subsets, min(6, len(all_subsets))):
        available = {i: fragments[i] for i in subset}
        decoded = rs.data_from(available)
        assert join_fragments(decoded, page_size) == page


@settings(max_examples=20, deadline=None)
@given(
    shape=_SHAPES,
    flip_index=st.integers(min_value=0, max_value=10**6),
)
def test_corrupt_fragment_never_silently_wrong(shape, flip_index):
    """A rotted fragment in the decode subset trips the page checksum.

    The codec itself cannot detect corruption (any k points define *a*
    polynomial); the guarantee is end-to-end — the pageout-time CRC the
    pager keeps never matches bytes decoded through rot.
    """
    k, m = shape
    page_size = 64
    page = bytes(range(page_size // 2)) * 2
    fragment_size = -(-page_size // k)
    data = split_page(page, k, fragment_size)
    rs = ReedSolomon(k, m)
    fragments = list(data) + list(rs.encode(data))

    victim = flip_index % len(fragments)
    # Only columns that are real payload in *every* data fragment: a flip
    # in the last fragment's zero-padding (or in the parity column that
    # only feeds that padding) is truncated away by join_fragments and is
    # legitimately invisible end-to-end.
    solid_cols = page_size - (k - 1) * fragment_size
    byte_pos = (flip_index // len(fragments)) % solid_cols
    rotted = bytearray(fragments[victim])
    rotted[byte_pos] ^= 1 + (flip_index % 255)
    fragments[victim] = bytes(rotted)

    # Decode through a subset that *includes* the rotted fragment.
    subset = [victim] + [i for i in range(k + m) if i != victim][: k - 1]
    decoded = rs.data_from({i: fragments[i] for i in subset})
    assert page_checksum(join_fragments(decoded, page_size)) != page_checksum(page)


def test_codec_shape_validation():
    with pytest.raises(ValueError):
        ReedSolomon(0, 1)
    with pytest.raises(ValueError):
        ReedSolomon(1, 0)
    with pytest.raises(ValueError):
        ReedSolomon(200, 56)  # k + m > 255 overruns GF(256) points


# --------------------------------------------------------------------------
# Placement groups.
# --------------------------------------------------------------------------

def test_placement_groups_partition_pool_with_slack():
    servers = [f"server-{i}" for i in range(8)]
    groups = PlacementGroupManager(servers, width=3)
    # 8 servers / width 3 -> 2 groups of 4: every group carries one
    # spare beyond the stripe width, so rebuilds stay in-group.
    assert len(groups.groups) == 2
    sizes = sorted(len(g) for g in groups.groups)
    assert sizes == [4, 4]
    seen = [s for g in groups.groups for s in g]
    assert sorted(seen) == sorted(servers)


def test_parse_ec_policy_names():
    assert parse_ec_policy("ec-2-1") == (2, 1)
    assert parse_ec_policy("ec-4-2") == (4, 2)
    assert parse_ec_policy("mirroring") is None
    assert parse_ec_policy("ec-x-1") is None


def test_builder_rejects_undersized_pool():
    with pytest.raises(ConfigurationError):
        build_cluster(
            policy="ec-4-2",
            machine_spec=SMALL,
            n_servers=5,  # < k + m = 6
            content_mode=True,
            server_capacity_pages=600,
        )


# --------------------------------------------------------------------------
# Degraded reads.
# --------------------------------------------------------------------------

def test_degraded_read_survives_dead_fragment_holder():
    cluster = build_ec("ec-2-1")
    cluster.run(SequentialScan(n_pages=300, passes=1, write=True))
    cluster.servers[1].crash()
    report = check_page_integrity(cluster)
    assert report.clean, report.verdict
    # Pages striped over the dead server were served by parity
    # substitution, and the report says so.
    assert report.degraded
    assert cluster.policy.counters["degraded_reads"] >= len(report.degraded)


# --------------------------------------------------------------------------
# Campaigns (the acceptance matrix).
# --------------------------------------------------------------------------

def run_campaign(policy, plan, pipelined):
    cluster = build_ec(policy, pipelined=pipelined)
    controller = ChaosController(cluster, plan)
    error = None
    try:
        cluster.run(SequentialScan(n_pages=400, passes=3, write=True))
    except ReproError as exc:
        error = exc
    return cluster, controller, error


@pytest.mark.parametrize("pipelined", [False, True], ids=["sync", "pipelined"])
@pytest.mark.parametrize("policy", ["ec-2-1", "ec-4-2"])
def test_ec_survives_correlated_campaign(policy, pipelined):
    """Multi-server crash_group + cascade + flap + rot: CLEAN, with the
    reconstruction accounting proving redundancy did the surviving."""
    cluster, controller, error = run_campaign(
        policy, FaultPlan.correlated_campaign(), pipelined
    )
    assert error is None, error
    report = check_page_integrity(cluster)
    assert report.clean, f"{policy}: {report.verdict} lost={report.lost[:5]}"
    kinds = [kind for _, kind, _ in controller.fault_log]
    assert "crash_group" in kinds
    counters = cluster.policy.counters
    assert counters["fragments_rebuilt"] > 0
    assert counters["recovered_pages"] > 0
    assert cluster.pager.counters["recoveries"] >= 3


@pytest.mark.parametrize("pipelined", [False, True], ids=["sync", "pipelined"])
@pytest.mark.parametrize("policy", ["ec-2-1", "ec-4-2"])
def test_ec_survives_heavy_campaign(policy, pipelined):
    """The pre-existing heavy campaign (single crash + flap + loss +
    rot) must also be CLEAN — EC is a superset of single tolerance."""
    from repro.experiments.resilience import _level_plan

    cluster, _, error = run_campaign(policy, _level_plan("heavy"), pipelined)
    assert error is None, error
    report = check_page_integrity(cluster)
    assert report.clean, f"{policy}: {report.verdict}"


def test_correlated_campaign_plan_is_data():
    """crash_group round-trips through the plain-kwargs wire format."""
    plan = FaultPlan.correlated_campaign()
    clone = FaultPlan.from_kwargs(plan.as_kwargs())
    assert clone == plan
    assert hash(clone) == hash(plan)
    assert any(event[0] == "crash_group" for event in plan.events)


def test_crash_group_logged_once_with_members():
    cluster = build_ec("ec-2-1")
    controller = ChaosController(
        cluster, FaultPlan(events=(("crash_group", 1.0, (0, 4)),))
    )
    cluster.run(SequentialScan(n_pages=300, passes=1, write=True))
    entries = [e for e in controller.fault_log if e[1] == "crash_group"]
    assert len(entries) == 1
    assert entries[0][2]["servers"] == ["server-0", "server-4"]


# --------------------------------------------------------------------------
# Fast-path identity.
# --------------------------------------------------------------------------

def test_compiled_and_interpreted_reports_identical():
    def one_run():
        cluster = build_ec("ec-4-2")
        report = cluster.run(SequentialScan(n_pages=300, passes=2, write=True))
        return report, cluster.metrics.snapshot()

    try:
        set_compile_enabled(True)
        compiled_report, compiled_metrics = one_run()
        set_compile_enabled(False)
        interpreted_report, interpreted_metrics = one_run()
    finally:
        set_compile_enabled(None)
    assert compiled_report.etime == interpreted_report.etime
    assert compiled_report.faults == interpreted_report.faults
    assert compiled_metrics == interpreted_metrics


@pytest.mark.parametrize("level", ["heavy", "correlated"])
def test_compiled_identity_under_chaos(level):
    """The concurrent fragment datapath (scatter pageouts, wave pageins)
    stays bit-deterministic under fault campaigns: the compiled-enabled
    and interpreted runs of a chaos cell return identical reports and
    metrics snapshots."""
    from repro.experiments.resilience import _level_plan

    plan = (
        FaultPlan.correlated_campaign()
        if level == "correlated"
        else _level_plan("heavy")
    )

    def one_run():
        cluster = build_ec("ec-4-2")
        ChaosController(cluster, plan)
        report = cluster.run(SequentialScan(n_pages=400, passes=3, write=True))
        integrity = check_page_integrity(cluster)
        assert integrity.clean, integrity.verdict
        return report, cluster.metrics.snapshot()

    try:
        set_compile_enabled(True)
        compiled_report, compiled_metrics = one_run()
        set_compile_enabled(False)
        interpreted_report, interpreted_metrics = one_run()
    finally:
        set_compile_enabled(None)
    assert compiled_report.etime == interpreted_report.etime
    assert compiled_report.faults == interpreted_report.faults
    assert compiled_metrics == interpreted_metrics
