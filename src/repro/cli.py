"""Command-line interface: regenerate any paper figure from the shell.

::

    python -m repro fig2 --apps mvec gauss
    python -m repro fig4
    python -m repro breakdown --observed
    python -m repro fig2 --trace fig2.jsonl   # structured event/span trace
    python -m repro trace-summary fig2.jsonl
    python -m repro all          # everything (minutes of simulation)

Each subcommand runs the matching experiment module and prints its
measured-vs-paper table.  ``--trace PATH`` records every simulation
event and request span to ``PATH`` (JSONL) plus a Chrome trace-viewer
file next to it; ``trace-summary`` digests a recorded trace.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import experiments as exp
from .log import configure_logging, get_logger
from .runner import configure_default_runner

__all__ = ["main", "build_parser"]

log = get_logger(__name__)


def _cmd_fig1(args) -> str:
    return exp.render_fig1(exp.run_fig1(seed=args.seed))


def _cmd_fig2(args) -> str:
    return exp.render_fig2(exp.run_fig2(apps=args.apps, policies=args.policies))


def _cmd_fig3(args) -> str:
    return exp.render_fig3(exp.run_fig3(sizes_mb=args.sizes))


def _cmd_fig4(args) -> str:
    return exp.render_fig4(
        exp.run_fig4(sizes_mb=args.sizes, simulate_fast_network=not args.no_simulate)
    )


def _cmd_fig5(args) -> str:
    return exp.render_fig5(exp.run_fig5(apps=args.apps))


def _cmd_breakdown(args) -> str:
    if getattr(args, "observed", False):
        return exp.render_observed_breakdown(
            exp.run_observed_breakdown(size_mb=args.size)
        )
    return exp.render_breakdown(exp.run_breakdown(size_mb=args.size))


def _cmd_trace_summary(args) -> str:
    from .obs.summary import load_trace, render_summary, summarize

    records = load_trace(args.trace_file, validate=not args.no_validate)
    return render_summary(summarize(records), top=args.top)


def _cmd_latency(args) -> str:
    return exp.render_latency(exp.run_latency(n_transfers=args.transfers))


def _cmd_busy(args) -> str:
    return exp.render_busy_servers(exp.run_busy_servers(apps=tuple(args.apps)))


def _cmd_loaded(args) -> str:
    return exp.render_loaded_ethernet(exp.run_loaded_ethernet(loads=args.loads))


def _cmd_scaling(args) -> str:
    return exp.render_server_scaling(exp.run_server_scaling(server_counts=args.servers))


def _cmd_netcmp(args) -> str:
    return exp.render_network_comparison(exp.run_network_comparison(loads=args.loads))


def _cmd_hetero(args) -> str:
    return exp.render_heterogeneous(exp.run_heterogeneous())


def _cmd_adaptive(args) -> str:
    return exp.render_adaptive(exp.run_adaptive(background_load=args.load))


def _cmd_remotedisk(args) -> str:
    return exp.render_remote_disk(exp.run_remote_disk())


def _cmd_multiclient(args) -> str:
    from .workloads import Fft, Gauss, ImageFilter, KernelBuild, Mvec, Qsort

    factories = {
        "mvec": Mvec, "gauss": Gauss, "qsort": Qsort,
        "fft": Fft, "filter": ImageFilter, "cc": KernelBuild,
    }
    chosen = [factories[name] for name in args.apps]
    # --clients N repeats the workload list round-robin up to N.
    while len(chosen) < args.clients:
        chosen.append(chosen[len(chosen) % len(args.apps)])
    return exp.render_multi_client(
        exp.run_multi_client(
            workload_factories=tuple(chosen[: max(args.clients, len(chosen))]),
            n_donors=args.donors,
            network=args.network,
        )
    )


def _cmd_fleet(args) -> str:
    return exp.render_fleet(
        exp.run_fleet(
            workload=(args.workload, {}),
            n_clients=args.clients,
            n_donors=args.donors,
            capacity_per_client=args.capacity,
            seed=args.seed,
            network=args.network,
            telemetry_interval=args.telemetry_interval,
        )
    )


def _cmd_diurnal(args) -> str:
    return exp.render_diurnal(exp.run_diurnal())


def _cmd_compression(args) -> str:
    return exp.render_compression(exp.run_compression())


def _cmd_resilience(args) -> str:
    levels = ("light",) if args.quick else tuple(args.levels)
    return exp.render_resilience(
        exp.run_resilience(
            policies=tuple(args.policies),
            levels=levels,
            pipelined=args.pipelined,
            pipeline_window=args.window,
            pipeline_prefetch=args.prefetch,
        )
    )


def _cmd_spectrum(args) -> str:
    return exp.render_spectrum(
        exp.run_spectrum(
            policies=tuple(args.policies),
            paper_scale=getattr(args, "paper_scale", False),
        )
    )


def _cmd_pipelining(args) -> str:
    return exp.render_pipelining(
        exp.run_pipelining(
            windows=tuple(args.windows),
            app=args.app,
            policy=args.policy,
            prefetch_depth=args.prefetch,
        )
    )


def _cmd_monitor(args) -> str:
    import json

    if args.campaign:
        campaign = exp.run_monitor_campaign(
            loads=args.loads,
            workload=args.app,
            policy=args.policy,
            interval=args.interval,
            capacity=args.capacity,
            seed=args.seed,
        )
        if args.json:
            return json.dumps(campaign, indent=2, sort_keys=True)
        return exp.render_monitor_campaign(campaign)
    point = exp.run_monitor(
        workload=args.app,
        policy=args.policy,
        load=args.load,
        interval=args.interval,
        capacity=args.capacity,
        seed=args.seed,
    )
    if args.json:
        return json.dumps(point, indent=2, sort_keys=True)
    return exp.render_monitor(point, width=args.width)


def _cmd_profile(args) -> str:
    from .workloads import PAPER_WORKLOADS, profile_workload, render_profiles

    suite = PAPER_WORKLOADS()
    if args.apps:
        suite = [wl for wl in suite if wl.name in args.apps]
    return render_profiles([profile_workload(wl) for wl in suite])


def _cmd_ablate(args) -> str:
    parts = []
    if args.which in ("replacement", "all"):
        parts.append(
            exp.render_ablation(
                exp.run_replacement_ablation(),
                "Replacement-policy ablation (GAUSS)",
                "policy",
            )
        )
    if args.which in ("window", "all"):
        parts.append(
            exp.render_ablation(
                exp.run_pageout_window_ablation(),
                "Pageout-window ablation (GAUSS, remote)",
                "window",
            )
        )
    if args.which in ("batch", "all"):
        parts.append(
            exp.render_ablation(
                exp.run_free_batch_ablation(),
                "Free-batch ablation (GAUSS, disk)",
                "batch",
            )
        )
    return "\n\n".join(parts)


_ALL = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "breakdown",
    "latency",
    "busy",
    "loaded",
    "scaling",
    "netcmp",
    "hetero",
    "adaptive",
    "remotedisk",
    "multiclient",
    "fleet",
    "diurnal",
    "compression",
    "resilience",
    "spectrum",
    "pipelining",
    "monitor",
    "profile",
    "ablate",
]

_APPS = ["mvec", "gauss", "qsort", "fft", "filter", "cc"]
_POLICIES = ["no-reliability", "parity-logging", "mirroring", "disk", "write-through"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Implementation of a Reliable Remote Memory "
        "Pager' (USENIX 1996): regenerate any evaluation figure.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Execution flags shared by every subcommand: how many worker
    # processes to fan independent runs over, and whether/where to use
    # the on-disk result cache.
    runner_flags = argparse.ArgumentParser(add_help=False)
    group = runner_flags.add_argument_group("execution")
    group.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent runs (0 = all cores; default 1)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="recompute every run, bypassing the on-disk result cache",
    )
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    group.add_argument(
        "--no-compile", action="store_true",
        help="disable the trace-compilation fast path: execute every "
        "reference stream interpretively (A/B switch; results are "
        "bit-identical either way)",
    )
    group.add_argument(
        "--no-analytic-ethernet", action="store_true",
        help="disable the uncontended-medium analytic Ethernet service "
        "path: simulate every frame's CSMA/CD state machine (A/B "
        "switch; results are bit-identical either way)",
    )
    group.add_argument(
        "--no-analytic-switched", action="store_true",
        help="disable the switched fabric's per-port-pair analytic "
        "service path: simulate every uplink/hop/drain step (A/B "
        "switch; results are bit-identical either way)",
    )
    group.add_argument(
        "--profile", default=None, metavar="PATH",
        help="profile the whole subcommand under cProfile and write a "
        "pstats dump to PATH (inspect with 'python -m pstats PATH')",
    )
    obs_group = runner_flags.add_argument_group("observability")
    obs_group.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a structured event/span trace to PATH (JSONL) plus a "
        "Chrome trace-viewer file; forces --jobs 1 and disables the cache",
    )
    obs_group.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log progress to stderr (-v info, -vv debug)",
    )
    obs_group.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress warnings; errors only",
    )

    p = sub.add_parser(
        "fig1", parents=[runner_flags], help="idle cluster memory over a week")
    p.add_argument("--seed", type=int, default=1995)
    p.set_defaults(func=_cmd_fig1)

    p = sub.add_parser(
        "fig2", parents=[runner_flags], help="six applications x four policies")
    p.add_argument("--apps", nargs="+", choices=_APPS, default=None)
    p.add_argument(
        "--policies",
        nargs="+",
        choices=_POLICIES,
        default=None,
    )
    p.set_defaults(func=_cmd_fig2)

    p = sub.add_parser(
        "fig3", parents=[runner_flags], help="FFT completion vs input size")
    p.add_argument("--sizes", nargs="+", type=float, default=None, metavar="MB")
    p.set_defaults(func=_cmd_fig3)

    p = sub.add_parser(
        "fig4", parents=[runner_flags], help="FFT under faster networks")
    p.add_argument("--sizes", nargs="+", type=float, default=None, metavar="MB")
    p.add_argument(
        "--no-simulate",
        action="store_true",
        help="skip the direct 10x-network simulation (prediction only)",
    )
    p.set_defaults(func=_cmd_fig4)

    p = sub.add_parser(
        "fig5", parents=[runner_flags], help="write-through vs parity logging")
    p.add_argument(
        "--apps", nargs="+", choices=["mvec", "gauss", "qsort", "fft"], default=None
    )
    p.set_defaults(func=_cmd_fig5)

    p = sub.add_parser(
        "breakdown", parents=[runner_flags], help="the §4.3 FFT-24MB decomposition")
    p.add_argument("--size", type=float, default=24.0, metavar="MB")
    p.add_argument(
        "--observed",
        action="store_true",
        help="trace the run and measure pptime/btime from span phases "
        "instead of modelling them",
    )
    p.set_defaults(func=_cmd_breakdown)

    p = sub.add_parser(
        "latency", parents=[runner_flags], help="§4.4 per-page latency microbenchmark")
    p.add_argument("--transfers", type=int, default=200)
    p.set_defaults(func=_cmd_latency)

    p = sub.add_parser(
        "busy", parents=[runner_flags], help="§4.5 busy workstations as servers")
    p.add_argument(
        "--apps", nargs="+", choices=["fft", "gauss", "mvec", "qsort"],
        default=["fft", "gauss", "mvec"],
    )
    p.set_defaults(func=_cmd_busy)

    p = sub.add_parser(
        "loaded", parents=[runner_flags], help="§4.6 loaded Ethernet")
    p.add_argument("--loads", nargs="+", type=float, default=[0.0, 0.3, 0.6])
    p.set_defaults(func=_cmd_loaded)

    p = sub.add_parser(
        "scaling", parents=[runner_flags], help="parity logging vs server count")
    p.add_argument("--servers", nargs="+", type=int, default=[2, 4, 8])
    p.set_defaults(func=_cmd_scaling)

    p = sub.add_parser(
        "netcmp", parents=[runner_flags], help="token ring vs Ethernet under load")
    p.add_argument("--loads", nargs="+", type=float, default=[0.0, 0.4, 0.8])
    p.set_defaults(func=_cmd_netcmp)

    p = sub.add_parser(
        "hetero", parents=[runner_flags], help="§5 heterogeneous-network hierarchy")
    p.set_defaults(func=_cmd_hetero)

    p = sub.add_parser(
        "adaptive", parents=[runner_flags], help="§5 network-load threshold")
    p.add_argument("--load", type=float, default=0.8)
    p.set_defaults(func=_cmd_adaptive)

    p = sub.add_parser(
        "remotedisk", parents=[runner_flags], help="remote memory vs remote disk paging")
    p.set_defaults(func=_cmd_remotedisk)

    p = sub.add_parser(
        "multiclient", parents=[runner_flags], help="N clients sharing the cluster")
    p.add_argument(
        "--clients", type=int, default=2, metavar="N",
        help="number of concurrent paging clients (default 2)")
    p.add_argument(
        "--donors", type=int, default=2, metavar="M",
        help="donor workstations hosting the per-client servers (default 2)")
    p.add_argument(
        "--network", choices=["ethernet", "switched"], default="ethernet",
        help="shared fabric: the paper's Ethernet (default) or the "
        "full-duplex switched network")
    p.add_argument(
        "--apps", nargs="+", choices=_APPS, default=["gauss", "qsort"],
        help="one workload per client, repeated round-robin to --clients")
    p.set_defaults(func=_cmd_multiclient)

    p = sub.add_parser(
        "fleet", parents=[runner_flags],
        help="fleet-scale campaign: N clients x M donors, cluster "
        "throughput / Jain fairness / p99 pagein latency")
    p.add_argument(
        "--clients", type=int, default=16, metavar="N",
        help="number of concurrent paging clients (default 16)")
    p.add_argument(
        "--donors", type=int, default=4, metavar="M",
        help="donor workstations hosting the per-client servers (default 4)")
    p.add_argument(
        "--workload", choices=_APPS + ["sequential-scan", "zipf", "hot-cold"],
        default="gauss", help="workload every client runs (default gauss)")
    p.add_argument(
        "--capacity", type=int, default=2048, metavar="PAGES",
        help="remote-memory grant per client per donor (default 2048)")
    p.add_argument(
        "--network", choices=["switched", "ethernet"], default="switched",
        help="fabric: switched full-duplex (default; analytic- and "
        "replay-eligible) or the paper's shared Ethernet")
    p.add_argument(
        "--telemetry-interval", type=float, default=0.0, metavar="SEC",
        help="sampling period for pooled pagein-latency percentiles "
        "(0 = off; sampling pins interpreted execution)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser(
        "diurnal", parents=[runner_flags], help="Figure 1 trace driving donor capacity")
    p.set_defaults(func=_cmd_diurnal)

    p = sub.add_parser(
        "compression", parents=[runner_flags], help="beyond-paper: page compression trade-off")
    p.set_defaults(func=_cmd_compression)

    p = sub.add_parser(
        "resilience", parents=[runner_flags],
        help="chaos campaign: page integrity under crashes, loss, and rot")
    p.add_argument(
        "--policies", nargs="+",
        choices=list(exp.RESILIENCE_POLICIES), default=list(exp.RESILIENCE_POLICIES),
    )
    p.add_argument(
        "--levels", nargs="+",
        choices=list(exp.LEVELS), default=["clean", "light"],
    )
    p.add_argument(
        "--quick", action="store_true",
        help="CI smoke: the 'light' campaign only",
    )
    p.add_argument(
        "--pipelined", action="store_true",
        help="run the whole campaign with the PR 4 pipelined datapath "
        "(write-behind queue + prefetcher) engaged",
    )
    p.add_argument(
        "--window", type=int, default=4, metavar="N",
        help="in-flight pageout window when --pipelined (default 4)",
    )
    p.add_argument(
        "--prefetch", type=int, default=4, metavar="DEPTH",
        help="prefetch depth when --pipelined (default 4)",
    )
    p.set_defaults(func=_cmd_resilience)

    p = sub.add_parser(
        "spectrum", parents=[runner_flags],
        help="beyond-paper: redundancy spectrum — wire overhead vs "
        "crashes tolerated across the whole policy family")
    p.add_argument(
        "--policies", nargs="+",
        choices=list(exp.SPECTRUM_POLICIES), default=list(exp.SPECTRUM_POLICIES),
    )
    p.add_argument(
        "--paper-scale", action="store_true",
        help="run GAUSS on the paper's 32 MB Alpha over the switched "
        "network with telemetry on; adds pagein latency percentiles",
    )
    p.set_defaults(func=_cmd_spectrum)

    p = sub.add_parser(
        "pipelining", parents=[runner_flags],
        help="pipelined datapath: write-behind window sweep + prefetch probe")
    p.add_argument(
        "--windows", nargs="+", type=int, default=list(exp.WINDOWS), metavar="W",
        help="in-flight window sizes to sweep (default: 1 2 4 8; "
        "window 1 is the synchronous baseline)",
    )
    p.add_argument("--app", default="gauss", choices=_APPS)
    p.add_argument(
        "--policy", default="parity-logging",
        choices=[name for name in _POLICIES if name != "disk"],
        help="reliability policy under the pipeline (DISK has no remote "
        "datapath to pipeline)",
    )
    p.add_argument(
        "--prefetch", type=int, default=8, metavar="DEPTH",
        help="prefetch depth for the hit-rate probe (default 8)",
    )
    p.set_defaults(func=_cmd_pipelining)

    p = sub.add_parser(
        "monitor", parents=[runner_flags],
        help="time-series telemetry + saturation health monitor")
    p.add_argument("--app", default="gauss", choices=_APPS)
    p.add_argument("--policy", default="no-reliability", choices=_POLICIES)
    p.add_argument(
        "--load", type=float, default=0.0, metavar="FRAC",
        help="background Ethernet load fraction for the single run "
        "(default 0.0)",
    )
    p.add_argument(
        "--interval", type=float, default=exp.monitor.DEFAULT_INTERVAL,
        metavar="SEC",
        help="sampling interval in simulated seconds (default %(default)s)",
    )
    p.add_argument(
        "--capacity", type=int, default=512, metavar="N",
        help="ring-buffer capacity per series; oldest samples are evicted "
        "beyond this (default 512)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--width", type=int, default=60, metavar="COLS",
        help="sparkline width for the ASCII timelines (default 60)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the raw series/health payload as JSON instead of ASCII",
    )
    p.add_argument(
        "--campaign", action="store_true",
        help="rising-load sweep: compare where health first warns against "
        "the measured §4.6 collapse knee",
    )
    p.add_argument(
        "--loads", nargs="+", type=float,
        default=list(exp.monitor.CAMPAIGN_LOADS), metavar="FRAC",
        help="load levels for --campaign",
    )
    p.set_defaults(func=_cmd_monitor)

    p = sub.add_parser(
        "profile", parents=[runner_flags], help="device-independent workload fault profiles")
    p.add_argument("--apps", nargs="+", choices=_APPS, default=None)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "ablate", parents=[runner_flags], help="design-choice ablations")
    p.add_argument(
        "--which", choices=["replacement", "window", "batch", "all"], default="all"
    )
    p.set_defaults(func=_cmd_ablate)

    p = sub.add_parser(
        "trace-summary",
        parents=[runner_flags],
        help="digest a recorded trace: span latencies, phases, slowest requests",
    )
    p.add_argument("trace_file", metavar="TRACE.jsonl")
    p.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="how many slowest requests to list (default 10)",
    )
    p.add_argument(
        "--no-validate", action="store_true",
        help="skip schema validation while loading",
    )
    p.set_defaults(func=_cmd_trace_summary)

    p = sub.add_parser(
        "all", parents=[runner_flags], help="run every experiment in sequence")
    p.set_defaults(func=None)

    return parser


def _trace_paths(path: str) -> tuple:
    """JSONL path as given, Chrome trace-viewer file derived from it."""
    base = path[: -len(".jsonl")] if path.endswith(".jsonl") else path
    return path, f"{base}.chrome.json"


def main(argv: Optional[List[str]] = None) -> int:
    import os

    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(verbose=args.verbose, quiet=args.quiet)
    if args.jobs < 0:
        parser.error(f"argument --jobs: must be >= 0, got {args.jobs}")
    if args.no_compile:
        # Environment, not a module flag: worker processes spawned by the
        # parallel runner inherit it, so the A/B switch holds at any -j.
        os.environ["REPRO_NO_COMPILE"] = "1"
    if args.no_analytic_ethernet:
        os.environ["REPRO_NO_ANALYTIC_ETH"] = "1"
    if args.no_analytic_switched:
        os.environ["REPRO_NO_ANALYTIC_SWITCHED"] = "1"
    if args.no_cache:
        # "recompute every run" covers compiled fault schedules too
        # (and the recorded effect capsules keyed off them).
        os.environ["REPRO_SCHEDULE_CACHE"] = "0"
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    tracer = None
    use_cache = not args.no_cache
    if args.trace:
        from .obs.trace import Tracer, install_tracer

        if args.jobs != 1:
            log.warning(
                "--trace forces --jobs 1: the tracer cannot follow runs "
                "into worker processes"
            )
            args.jobs = 1
        if use_cache:
            # A cached result replays without simulating, which would
            # record nothing — traced invocations always recompute.
            log.info("--trace disables the result cache for this invocation")
            use_cache = False
        tracer = Tracer()
        install_tracer(tracer)
    configure_default_runner(
        jobs=args.jobs,
        use_cache=use_cache,
        cache_dir=args.cache_dir,
    )
    try:
        if args.command == "all":
            for command in _ALL:
                print(f"==== {command} " + "=" * (60 - len(command)))
                print(main_output(command))
                print()
            return 0
        print(args.func(args))
        return 0
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        sys.stderr.close()
        return 0
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(args.profile)
            if not sys.stderr.closed:
                print(
                    f"profile: pstats dump -> {args.profile} "
                    f"(python -m pstats {args.profile})",
                    file=sys.stderr,
                )
        if tracer is not None:
            from .obs.trace import uninstall_tracer

            uninstall_tracer()
            jsonl_path, chrome_path = _trace_paths(args.trace)
            count = tracer.write_jsonl(jsonl_path)
            tracer.write_chrome(chrome_path)
            if not sys.stderr.closed:
                print(
                    f"trace: {count} records -> {jsonl_path} "
                    f"(chrome://tracing view: {chrome_path})",
                    file=sys.stderr,
                )


def main_output(command: str) -> str:
    """Run one subcommand with default arguments; returns its table."""
    parser = build_parser()
    args = parser.parse_args([command])
    return args.func(args)
