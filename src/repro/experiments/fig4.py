"""Figure 4: FFT under faster-network alternatives.

Four curves over the Fig 3 input sweep:

* DISK — measured on the local RZ55;
* ETHERNET — measured parity logging over the 10 Mbit/s Ethernet;
* ETHERNET*10 — the §4.3 model's *prediction* for a 10x network.  We also
  *simulate* a 100 Mbit/s switched network directly, which the paper
  could not do — validating their extrapolation against a real (model)
  network;
* ALL MEMORY — predicted utime + systime + inittime.

The paper's punchline: at 10x bandwidth, paging overhead falls below 17%
of total execution time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..analysis.charts import ascii_chart
from ..analysis.extrapolate import all_memory_bound, decompose
from ..analysis.paper_data import FIG3_INPUT_SIZES_MB
from ..analysis.report import format_table
from ..config import fast_network
from ..runner import RunSpec, default_runner

__all__ = ["run_fig4", "render_fig4"]


def run_fig4(
    sizes_mb: Optional[Iterable[float]] = None,
    bandwidth_factor: float = 10.0,
    simulate_fast_network: bool = True,
    runner=None,
) -> Dict[float, Dict[str, float]]:
    """Returns, per input size, the four curves (plus the validation
    curve ``ethernet_x10_simulated`` when requested)."""
    sizes = list(sizes_mb) if sizes_mb else list(FIG3_INPUT_SIZES_MB)
    cells = [("disk", {}), ("parity-logging", {})]
    if simulate_fast_network:
        cells.append(
            ("parity-logging", {"switched_spec": fast_network(bandwidth_factor)})
        )
    specs = [
        RunSpec.make(
            "fft",
            policy,
            workload_kwargs={"size_mb": mb},
            overrides=overrides,
            label=f"fft-{mb}MB/{policy}" + ("+fast" if overrides else ""),
        )
        for mb in sizes
        for policy, overrides in cells
    ]
    flat = iter((runner or default_runner()).run(specs))
    results: Dict[float, Dict[str, float]] = {}
    for mb in sizes:
        disk = next(flat).report
        ethernet = next(flat).report
        decomposition = decompose(ethernet)
        row = {
            "disk": disk.etime,
            "ethernet": ethernet.etime,
            "ethernet_x10_predicted": decomposition.predicted_etime(bandwidth_factor),
            "all_memory": all_memory_bound(decomposition),
            "overhead_fraction_x10": 1.0
            - (
                decomposition.utime + decomposition.systime + decomposition.inittime
            )
            / decomposition.predicted_etime(bandwidth_factor),
        }
        if simulate_fast_network:
            row["ethernet_x10_simulated"] = next(flat).report.etime
        results[mb] = row
    return results


def render_fig4(results: Dict[float, Dict[str, float]]) -> str:
    """Figure 4 table plus an ASCII rendering of the four curves."""
    curves = ["disk", "ethernet", "ethernet_x10_predicted"]
    sample = next(iter(results.values()))
    if "ethernet_x10_simulated" in sample:
        curves.append("ethernet_x10_simulated")
    curves.append("all_memory")
    rows: List[List[str]] = []
    for mb in sorted(results):
        row = [f"{mb:.1f}"]
        row += [f"{results[mb][c]:.1f}" for c in curves]
        row.append(f"{results[mb]['overhead_fraction_x10']:.1%}")
        rows.append(row)
    table = format_table(
        ["input (MB)"] + curves + ["paging overhead @10x"],
        rows,
        title="Figure 4: FFT under network alternatives (seconds)",
    )
    chart = ascii_chart(
        {
            curve: [(mb, results[mb][curve]) for mb in sorted(results)]
            for curve in curves
        },
        width=48,
        height=12,
        x_label="input (MB)",
        y_label="completion (s)",
    )
    return table + "\n\n" + chart
