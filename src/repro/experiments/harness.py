"""Shared experiment harness: the paper's standard configurations.

§4.1 defines the four configurations of Figure 2 (and §4.7 adds the
write-through comparison of Figure 5):

* NO RELIABILITY — two remote memory servers;
* PARITY LOGGING — four servers plus a parity server, 10% overflow;
* MIRRORING — one primary + one mirror server;
* DISK — the local DEC RZ55, no pager involvement;
* WRITE THROUGH — remote memory as a write-through cache of the disk.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.builder import Cluster, build_cluster
from ..vm.machine import CompletionReport
from ..workloads.base import Workload

__all__ = ["PAPER_CONFIGS", "run_policy", "run_suite"]

#: build_cluster keyword arguments for each of the paper's configurations.
PAPER_CONFIGS: Dict[str, dict] = {
    "no-reliability": dict(policy="no-reliability", n_servers=2),
    "parity-logging": dict(policy="parity-logging", n_servers=4, overflow_fraction=0.10),
    "mirroring": dict(policy="mirroring", n_servers=2),
    "disk": dict(policy="disk"),
    "write-through": dict(policy="write-through", n_servers=2),
}


def run_policy(
    workload_factory: Callable[[], Workload],
    policy: str,
    cluster_hook: Optional[Callable[[Cluster], None]] = None,
    **overrides,
) -> CompletionReport:
    """Run one workload under one paper configuration.

    ``cluster_hook`` runs after assembly and before the workload starts —
    experiments use it to attach background load, crash injectors, etc.
    """
    kwargs = dict(PAPER_CONFIGS[policy])
    kwargs.update(overrides)
    cluster = build_cluster(**kwargs)
    if cluster_hook is not None:
        cluster_hook(cluster)
    workload = workload_factory()
    return cluster.run(workload)


def run_suite(
    workload_factories: Dict[str, Callable[[], Workload]],
    policies,
    cluster_hook: Optional[Callable[[Cluster], None]] = None,
    **overrides,
) -> Dict[str, Dict[str, CompletionReport]]:
    """Run a matrix of workloads x policies; returns nested reports."""
    results: Dict[str, Dict[str, CompletionReport]] = {}
    for app_name, factory in workload_factories.items():
        results[app_name] = {}
        for policy in policies:
            results[app_name][policy] = run_policy(
                factory, policy, cluster_hook=cluster_hook, **overrides
            )
    return results
