"""Result cache: round-trip fidelity, content addressing, corruption."""

import dataclasses
import json

from repro.runner import ResultCache, RunSpec, fingerprint
from repro.runner.execute import execute_spec

SPEC = RunSpec.make("gauss", "disk", workload_kwargs={"n": 700})


def test_roundtrip_preserves_report_exactly(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(SPEC) is None
    assert cache.misses == 1

    result = execute_spec(SPEC)
    assert cache.put(SPEC, result.report, result.extras)

    report, extras = cache.get(SPEC)
    assert cache.hits == 1
    assert dataclasses.asdict(report) == dataclasses.asdict(result.report)
    assert extras == result.extras


def test_fingerprint_ignores_label_but_not_parameters():
    labelled = RunSpec.make("gauss", "disk", workload_kwargs={"n": 700}, label="x")
    assert fingerprint(labelled) == fingerprint(SPEC)
    other = RunSpec.make("gauss", "disk", workload_kwargs={"n": 701})
    assert fingerprint(other) != fingerprint(SPEC)


def test_corrupt_entry_reads_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    result = execute_spec(SPEC)
    cache.put(SPEC, result.report, result.extras)

    [entry] = tmp_path.glob("*.json")
    entry.write_text("{not json", encoding="utf-8")
    assert cache.get(SPEC) is None

    entry.write_text(json.dumps({"format": 999}), encoding="utf-8")
    assert cache.get(SPEC) is None


def test_unserialisable_extras_refuse_to_cache(tmp_path):
    cache = ResultCache(tmp_path)
    result = execute_spec(SPEC)
    assert not cache.put(SPEC, result.report, {"cluster": object()})
    assert cache.get(SPEC) is None


def test_unusable_cache_location_degrades_to_uncached(tmp_path):
    """A file where the cache dir should be must never lose a result."""
    blocker = tmp_path / "not-a-directory"
    blocker.write_text("")
    cache = ResultCache(blocker)
    result = execute_spec(SPEC)
    assert not cache.put(SPEC, result.report, result.extras)
    assert cache.get(SPEC) is None


def test_clear_removes_entries(tmp_path):
    cache = ResultCache(tmp_path)
    result = execute_spec(SPEC)
    cache.put(SPEC, result.report, result.extras)
    assert cache.clear() == 1
    assert cache.get(SPEC) is None


def test_entries_are_human_inspectable(tmp_path):
    cache = ResultCache(tmp_path)
    result = execute_spec(SPEC)
    cache.put(SPEC, result.report, result.extras)
    [entry] = tmp_path.glob("*.json")
    payload = json.loads(entry.read_text(encoding="utf-8"))
    assert payload["spec"]["workload"] == "gauss"
    assert payload["spec"]["policy"] == "disk"
    assert payload["report"]["etime"] == result.report.etime
