"""Every example script must run cleanly end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_examples_directory_has_at_least_three_examples():
    scripts = list(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "PARITY LOGGING" in out
    assert "faster than the local disk" in out


def test_crash_survival(capsys):
    run_example("crash_survival.py")
    out = capsys.readouterr().out
    assert "crashed at" in out
    assert "recoveries: 1" in out


def test_policy_shootout_single_app(capsys):
    run_example("policy_shootout.py", argv=["mvec"])
    out = capsys.readouterr().out
    assert "ranking matches" in out
    assert "stencil" in out


def test_faster_networks(capsys):
    run_example("faster_networks.py")
    out = capsys.readouterr().out
    assert "10x bandwidth" in out
    assert "simulated 100 Mbit/s" in out


def test_busy_cluster(capsys):
    run_example("busy_cluster.py")
    out = capsys.readouterr().out
    assert "within 7%" in out
    assert "verified byte-for-byte after migration" in out


def test_supercomputer(capsys):
    run_example("supercomputer.py")
    out = capsys.readouterr().out
    assert "supercomputer donor" in out
    assert "overflowed to the local disk" in out


def test_trace_replay(capsys, tmp_path):
    run_example("trace_replay.py", argv=[str(tmp_path / "g.trace")])
    out = capsys.readouterr().out
    assert "recorded" in out
    assert "only the paging device differed" in out
