"""Crash injection and recovery verification helpers (§2.2).

The paper's reliability claim is that a *single workstation crash* never
costs the client its pages.  :class:`CrashInjector` kills a chosen server
at a chosen simulated instant — exactly what the paper's fault model
covers (software crash / hardware error; power failures are excluded as
UPS-handled, and network partitions block rather than crash).
"""

from __future__ import annotations

from typing import Optional

from ..sim import Process, Simulator
from .server import MemoryServer

__all__ = ["CrashInjector"]


class CrashInjector:
    """Schedules server crashes at simulated instants.

    >>> injector = CrashInjector(sim)
    >>> injector.crash_at(server, 12.5)   # server dies at t=12.5 s
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.crashes: list = []

    def crash_at(self, server: MemoryServer, at_time: float) -> Process:
        """Kill ``server`` at ``at_time`` (must not be in the past)."""
        if at_time < self.sim.now:
            raise ValueError(f"crash time {at_time} is in the past (now {self.sim.now})")
        return self.sim.process(
            self._crash(server, at_time), name=f"crash:{server.name}"
        )

    def crash_after_pageouts(
        self, server: MemoryServer, pageouts: int, poll: Optional[float] = None
    ) -> None:
        """Kill ``server`` the instant it finishes its ``pageouts``-th
        pageout — deterministic mid-workload fault injection.

        Event-driven: hooks the server's pageout counter directly, so no
        polling process clutters the kernel's heap and the crash lands at
        the exact store that crosses the threshold (the old 10 ms poll
        could let extra pageouts slip through the detection window).
        ``poll`` is accepted for backward compatibility and ignored.
        """
        if pageouts < 0:
            raise ValueError(f"negative pageout count: {pageouts}")
        if server.counters["pageouts"] >= pageouts:
            self._kill(server)
            return

        def watcher(count: int) -> None:
            if count >= pageouts:
                server.remove_pageout_watcher(watcher)
                self._kill(server)

        server.add_pageout_watcher(watcher)

    def _crash(self, server: MemoryServer, at_time: float):
        yield self.sim.timeout(at_time - self.sim.now)
        self._kill(server)

    def _kill(self, server: MemoryServer) -> None:
        if server.is_alive:
            server.crash()
            self.crashes.append((self.sim.now, server.name))
