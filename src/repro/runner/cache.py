"""Content-addressed on-disk cache of completed experiment runs.

Each result is stored as one JSON file named by the SHA-256 of the
run's *fingerprint*: the spec's canonical identity, the package
version, the effective codec backend, and a digest of the
result-determining source trees (the simulation kernel, VM, network,
disk, cluster, policies, workloads and configuration).  Editing any of
those invalidates every entry automatically; editing experiment drivers, analysis, rendering or the
CLI does not — re-running ``repro fig2`` after an unrelated change
skips already-computed cells.

The store is human-inspectable: every file carries the spec it caches
in ``describe()`` form next to the report fields.  Invalidate manually
by deleting files (or the whole directory), or bypass with
``--no-cache``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..vm.machine import CompletionReport
from .spec import RunSpec

__all__ = [
    "ResultCache",
    "ScheduleCache",
    "EffectCache",
    "default_cache_dir",
    "fingerprint",
]

#: Bump when the on-disk entry layout changes.
_FORMAT = 1

#: Subpackages (and modules) whose source determines simulation results.
#: experiments/, analysis/, cli.py and the runner itself are deliberately
#: excluded: they orchestrate and render but do not change a cell's report.
_RESULT_SOURCES = (
    "sim",
    "vm",
    "net",
    "disk",
    "core",
    "cluster",
    "faults",
    "workloads",
    "config.py",
    "units.py",
    "errors.py",
)

_code_digest: Optional[str] = None


def _source_digest() -> str:
    """Digest of the result-determining package sources (cached)."""
    global _code_digest
    if _code_digest is None:
        import repro

        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for entry in _RESULT_SOURCES:
            path = root / entry
            files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for file in files:
                digest.update(str(file.relative_to(root)).encode())
                digest.update(file.read_bytes())
        _code_digest = digest.hexdigest()
    return _code_digest


def _runtime_token() -> str:
    """Runtime configuration that rides in every fingerprint.

    The GF(256) engines are byte-identical by contract, but keying on
    the *effective* backend means an engine regression can never poison
    cells computed by the other engine — and A/B benchmark legs that
    flip ``REPRO_NO_NUMPY_GF`` honestly recompute both sides.  Network
    model and client count need no entry here: they travel inside
    ``spec.overrides`` and are already part of ``spec.identity()``.
    """
    from ..core.policies.gf256 import codec_backend

    return f"codec={codec_backend()}"


def fingerprint(spec: RunSpec) -> str:
    """Content address of one run: spec identity + version + sources
    + runtime configuration (the effective codec backend)."""
    import repro

    payload = "\n".join(
        (
            str(_FORMAT),
            repro.__version__,
            _source_digest(),
            _runtime_token(),
            spec.identity(),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else the XDG cache home."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


class ResultCache:
    """Filesystem-backed map from run fingerprints to results."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None):
        self.dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, spec: RunSpec) -> Path:
        return self.dir / f"{fingerprint(spec)}.json"

    def _load(self, path: Path) -> Optional[Tuple[CompletionReport, Dict[str, Any]]]:
        """Read one entry file; None on any miss or corruption."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("format") != _FORMAT:
                raise ValueError("stale cache format")
            report = CompletionReport(**entry["report"])
            extras = entry.get("extras", {})
        except (OSError, ValueError, TypeError, KeyError):
            # Missing, corrupt, or from an incompatible layout: recompute.
            return None
        return report, extras

    def get(self, spec: RunSpec) -> Optional[Tuple[CompletionReport, Dict[str, Any]]]:
        """Load a cached (report, extras) pair, or None on miss."""
        loaded = self._load(self._path(spec))
        if loaded is None:
            self.misses += 1
        else:
            self.hits += 1
        return loaded

    def get_many(
        self, specs: Sequence[RunSpec]
    ) -> List[Optional[Tuple[CompletionReport, Dict[str, Any]]]]:
        """Batched :meth:`get`: one lookup pass for a whole campaign.

        A cold matrix of N cells would otherwise pay N failed ``open``
        probes; one directory listing classifies every miss up front,
        and only files that actually exist are opened and parsed.
        """
        try:
            present = {entry.name for entry in os.scandir(self.dir)}
        except OSError:
            present = set()
        out: List[Optional[Tuple[CompletionReport, Dict[str, Any]]]] = []
        for spec in specs:
            path = self._path(spec)
            loaded = self._load(path) if path.name in present else None
            if loaded is None:
                self.misses += 1
            else:
                self.hits += 1
            out.append(loaded)
        return out

    def put(
        self, spec: RunSpec, report: CompletionReport, extras: Dict[str, Any]
    ) -> bool:
        """Store one result; returns False if it is not JSON-representable."""
        entry = {
            "format": _FORMAT,
            "spec": spec.describe(),
            "report": asdict(report),
            "extras": extras,
        }
        try:
            payload = json.dumps(entry, indent=1, sort_keys=True)
        except (TypeError, ValueError):
            return False
        path = self._path(spec)
        # Write-then-rename so concurrent runners never read a torn file.
        # Any filesystem failure (unwritable location, a file where the
        # cache directory should be) degrades to "not cached" — never
        # lose a completed run to a cache problem.
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        return True

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.dir.is_dir():
            for file in self.dir.glob("*.json"):
                file.unlink(missing_ok=True)
                removed += 1
        return removed


class ScheduleCache:
    """Content-addressed store of compiled fault schedules.

    Keys are the schedule-determining inputs (workload identity token,
    replacement policy, frame count, page size, CPU speed, chunking and
    batch parameters — see ``repro.compile.plan``) combined with the
    same source digest :class:`ResultCache` uses, so editing any
    result-determining source invalidates cached schedules too.  Lives
    under ``<cache>/schedules/`` next to the result cache and follows
    the same write-then-rename discipline.
    """

    def __init__(self, cache_dir: Optional[os.PathLike] = None):
        base = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.dir = base / "schedules"
        self.hits = 0
        self.misses = 0

    def _path(self, key: Dict[str, Any]) -> Path:
        from ..compile.schedule import SCHEDULE_FORMAT

        import repro

        payload = json.dumps(
            {
                "format": SCHEDULE_FORMAT,
                "version": repro.__version__,
                "sources": _source_digest(),
                "key": key,
            },
            sort_keys=True,
        )
        return self.dir / f"{hashlib.sha256(payload.encode()).hexdigest()}.json"

    def get(self, key: Dict[str, Any]):
        """Load a cached schedule, or None on miss/corruption."""
        from ..compile.schedule import FaultSchedule

        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                schedule = FaultSchedule.from_json_dict(json.load(handle))
        except (OSError, ValueError, TypeError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return schedule

    def put(self, key: Dict[str, Any], schedule) -> bool:
        """Store one schedule; returns False on any filesystem failure."""
        try:
            payload = json.dumps(schedule.to_json_dict())
        except (TypeError, ValueError):
            return False
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        return True

    def clear(self) -> int:
        """Delete every cached schedule; returns the number removed."""
        removed = 0
        if self.dir.is_dir():
            for file in self.dir.glob("*.json"):
                file.unlink(missing_ok=True)
                removed += 1
        return removed


class EffectCache:
    """Content-addressed store of recorded run-effect capsules.

    Keys combine the schedule key with the live cluster fingerprint
    (see ``repro.compile.effects.effects_key``), the capsule and
    schedule format versions, the package version, and the same source
    digest the other caches use — editing any result-determining source
    invalidates every capsule.  Lives under ``<cache>/effects/`` and
    follows the same write-then-rename, fail-to-miss discipline.
    """

    def __init__(self, cache_dir: Optional[os.PathLike] = None):
        base = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.dir = base / "effects"
        self.hits = 0
        self.misses = 0

    def _path(self, key: Dict[str, Any]) -> Path:
        from ..compile.effects import EFFECTS_FORMAT
        from ..compile.schedule import SCHEDULE_FORMAT

        import repro

        payload = json.dumps(
            {
                "format": EFFECTS_FORMAT,
                "schedule_format": SCHEDULE_FORMAT,
                "version": repro.__version__,
                "sources": _source_digest(),
                "key": key,
            },
            sort_keys=True,
        )
        return self.dir / f"{hashlib.sha256(payload.encode()).hexdigest()}.json"

    def get(self, key: Dict[str, Any]):
        """Load a cached capsule, or None on miss/corruption."""
        from ..compile.effects import RunEffects

        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                effects = RunEffects.from_json_dict(json.load(handle))
        except (OSError, ValueError, TypeError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return effects

    def put(self, key: Dict[str, Any], effects) -> bool:
        """Store one capsule; returns False on any failure."""
        try:
            payload = json.dumps(effects.to_json_dict())
        except (TypeError, ValueError):
            return False
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        return True

    def clear(self) -> int:
        """Delete every cached capsule; returns the number removed."""
        removed = 0
        if self.dir.is_dir():
            for file in self.dir.glob("*.json"):
                file.unlink(missing_ok=True)
                removed += 1
        return removed
