"""Unit tests for result-table rendering and shape checks."""

from repro.analysis import comparison_table, format_table, shape_check


def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 22], [333, 4]], title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "a" in lines[1] and "bb" in lines[1]
    assert lines[2].startswith("---")
    assert len(lines) == 5


def test_comparison_table_pairs_values():
    measured = {"gauss": {"disk": 78.7, "no-reliability": 45.3}}
    paper = {"gauss": {"disk": 79.61, "no-reliability": 40.62}}
    text = comparison_table(measured, paper, ["no-reliability", "disk"])
    assert "45.30 / 40.62" in text
    assert "78.70 / 79.61" in text


def test_comparison_table_missing_values():
    text = comparison_table({"x": {"disk": 1.0}}, {}, ["disk", "other"])
    assert "1.00 / -" in text
    assert "- / -" in text


def test_shape_check_order_match():
    measured = {"a": 1.0, "b": 2.0, "c": 3.0}
    paper = {"a": 10.0, "b": 20.0, "c": 30.0}
    check = shape_check(measured, paper)
    assert check["order_matches"]
    assert check["measured_order"] == ["a", "b", "c"]
    assert check["max_relative_gap_error"] == 0.0


def test_shape_check_order_mismatch():
    measured = {"a": 1.0, "b": 3.0, "c": 2.0}
    paper = {"a": 1.0, "b": 2.0, "c": 3.0}
    check = shape_check(measured, paper)
    assert not check["order_matches"]


def test_shape_check_gap_error():
    measured = {"base": 1.0, "x": 3.0}  # ours: 3x gap
    paper = {"base": 1.0, "x": 2.0}  # paper: 2x gap
    check = shape_check(measured, paper)
    assert check["max_relative_gap_error"] == 0.5  # |3-2|/2


def test_shape_check_ignores_uncommon_keys():
    check = shape_check({"a": 1.0, "only-ours": 9.0}, {"a": 1.0, "only-paper": 5.0})
    assert check["measured_order"] == ["a"]
