"""Background traffic generators for the loaded-Ethernet experiments.

§4.6 of the paper repeats the application runs "using an already loaded
Ethernet" and observes performance collapse from CSMA/CD collisions.  To
reproduce that, these generators attach extra stations to the shared
segment and inject traffic at a configurable offered load.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..sim import Interrupt, Process, RngRegistry, Simulator
from .base import Network

__all__ = ["PoissonTrafficSource", "attach_background_load"]


class PoissonTrafficSource:
    """A station that offers Poisson-arrival fixed-size messages.

    Parameters
    ----------
    offered_load:
        Fraction of the network's raw bandwidth this source tries to use
        (0.2 means 20% of the wire, before collision losses).
    message_bytes:
        Size of each injected message.
    """

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        offered_load: float,
        message_bytes: int = 1460,
        rng: Optional[random.Random] = None,
    ):
        if not 0 < offered_load:
            raise ValueError(f"offered_load must be positive, got {offered_load}")
        if message_bytes <= 0:
            raise ValueError(f"message_bytes must be positive: {message_bytes}")
        self.network = network
        self.src = src
        self.dst = dst
        self.offered_load = offered_load
        self.message_bytes = message_bytes
        self.rng = rng or random.Random(0)
        self.sent = 0
        network.attach(src)
        network.attach(dst)
        bandwidth = network.spec.bandwidth
        #: Mean inter-arrival time for the requested offered load.
        self.mean_gap = message_bytes / (bandwidth * offered_load)
        self.process: Process = network.sim.process(
            self._run(), name=f"traffic:{src}"
        )

    def _run(self):
        sim: Simulator = self.network.sim
        try:
            while True:
                yield sim.timeout(self.rng.expovariate(1.0 / self.mean_gap))
                # Fire-and-forget: background sources do not wait for
                # delivery, so a congested wire just builds station queues
                # (as real offered load does).
                self.network.transfer(self.src, self.dst, self.message_bytes)
                self.sent += 1
        except Interrupt:
            return

    def stop(self) -> None:
        """Stop injecting (the current queue still drains)."""
        if self.process.is_alive:
            self.process.interrupt(cause="traffic-stop")


def attach_background_load(
    network: Network,
    total_load: float,
    n_sources: int = 4,
    rngs: Optional[RngRegistry] = None,
    message_bytes: int = 1460,
) -> List[PoissonTrafficSource]:
    """Attach ``n_sources`` stations that together offer ``total_load``.

    Each source sends to a distinct sink station, so the extra traffic
    contends for the wire but not for any host used by the pager.
    """
    if n_sources < 1:
        raise ValueError(f"need at least one source, got {n_sources}")
    rngs = rngs or RngRegistry(seed=1)
    sources = []
    for i in range(n_sources):
        sources.append(
            PoissonTrafficSource(
                network,
                src=f"bg-src-{i}",
                dst=f"bg-dst-{i}",
                offered_load=total_load / n_sources,
                message_bytes=message_bytes,
                rng=rngs.stream(f"traffic.{i}"),
            )
        )
    return sources
