"""Resilience under injected faults (beyond-paper chaos campaign).

The paper's claim is *reliability at low cost* (§2.2) — but its
evaluation only ever kills one server on an otherwise perfect network.
This experiment sweeps fault intensity x reliability policy under the
:mod:`repro.faults` chaos harness and reports, per cell, the end-to-end
page-integrity verdict (every page the pager still owes the application
is replayed and checked against its pageout CRC) plus the retry /
recovery / scrub accounting that explains it.

Expected outcome, mirroring §2.2's taxonomy: every redundant policy
(mirroring, parity, parity logging, write-through, and the
erasure-coded ``ec-K-M`` family) comes through the ``light`` and
``heavy`` campaigns CLEAN — zero pages lost or corrupted — while NO
RELIABILITY loses the crashed server's pages outright.  The
``correlated`` level goes beyond the paper: a two-server crash_group
plus a crash-during-recovery cascade, survivable only by policies that
tolerate more than one concurrent failure — EC cells must stay CLEAN
while the single-tolerance policies are expected LOSSY.

Reliable-policy cells run through the parallel runner (cache-aware,
``--jobs`` friendly); the fault schedule is carried as plain data in the
RunSpec, so serial, parallel and cached runs replay the identical
campaign.  The faulted NO RELIABILITY cell is the one deliberate
exception: its workload *dies* with the crash (that is the result), so
it runs inline where the exception can be caught and reported.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.report import format_table
from ..config import MachineSpec
from ..errors import ReproError
from ..faults import ChaosController, FaultPlan, check_page_integrity
from ..runner import RunSpec, default_runner
from ..runner.registry import EXTRACTORS

__all__ = [
    "LEVELS",
    "RESILIENCE_POLICIES",
    "render_resilience",
    "run_resilience",
]

RESILIENCE_POLICIES = (
    "no-reliability",
    "mirroring",
    "parity",
    "parity-logging",
    "write-through",
    "ec-2-1",
    "ec-4-2",
)

LEVELS = ("clean", "light", "heavy", "correlated")

#: Small machine -> short runs (~20 simulated seconds fault-free); the
#: campaign times below are chosen against that duration.
_SMALL = MachineSpec(
    name="chaos-small",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)

#: Every policy gets four data servers: mirroring with only two cannot
#: re-mirror after losing one, and the campaign crashes exactly one.
_BUILD = dict(
    machine_spec=_SMALL,
    content_mode=True,
    seed=3,
    n_servers=4,
    server_capacity_pages=600,
)

_WORKLOAD = ("sequential-scan", dict(n_pages=400, passes=3, write=True))

#: Policies whose fault tolerance stops at one concurrent failure per
#: redundancy group.  The ``correlated`` campaign opens with a two-server
#: crash_group, so these cells are *expected* to die or lose pages —
#: they run inline where the death is caught and reported as the result.
_SINGLE_TOLERANCE = frozenset(
    {"no-reliability", "mirroring", "parity", "parity-logging"}
)


def _cell_servers(policy: str, level: str) -> int:
    """Server-pool size for one (policy, level) cell.

    Erasure-coded cells get ``max(2 * (k + m), 8)``: two CodingSets
    placement groups, each with rebuild slack beyond the stripe width
    so fragments rebuild *inside* their group instead of borrowing
    cross-group and leaking the blast radius (see
    ``FaultPlan.correlated_campaign``).  The ``correlated`` campaign's
    default targets reach server index 5, so every other policy gets
    six servers at that level.
    """
    from ..core.policies import parse_ec_policy

    shape = parse_ec_policy(policy)
    if shape is not None:
        return max(2 * (shape[0] + shape[1]), 8)
    if level == "correlated":
        return 6
    return int(_BUILD["n_servers"])


def _level_plan(level: str) -> Optional[FaultPlan]:
    """The fault campaign for one intensity level (None = no faults)."""
    if level == "clean":
        return None
    if level == "light":
        # The acceptance campaign: one crash + 1% loss + one rot burst.
        return FaultPlan.standard_campaign()
    if level == "correlated":
        # The multi-failure schedule erasure coding exists to survive:
        # a two-server crash_group, a crash-during-recovery cascade, an
        # amnesiac flap, and a rot burst (timings documented on the
        # classmethod).  EC cells must be CLEAN; single-tolerance
        # policies see two concurrent faults and are expected LOSSY.
        return FaultPlan.correlated_campaign()
    if level == "heavy":
        # Everything at once: steady loss/duplication/delay, a loss
        # burst, a crash, a flapping server, and an at-rest corruption
        # burst.  The schedule respects what single-redundancy policies
        # can actually survive: the flap outage (4 s) is longer than the
        # watchdog's suspicion threshold so the lost copies are detected
        # and re-protected, and the rot burst lands last — rot composed
        # with an un-repaired crash in the same group is two faults in
        # one XOR equation, unrecoverable by design.
        return FaultPlan(
            drop_rate=0.02,
            duplicate_rate=0.01,
            delay_rate=0.05,
            watchdog_interval=0.5,
            events=(
                ("loss_burst", 2.0, 1.0, 0.2),
                ("crash", 5.0, 0),
                ("flap", 12.0, 2, 4.0),
                ("corrupt_burst", 40.0, 1, 4),
            ),
        )
    raise ValueError(f"unknown resilience level {level!r}: pick from {LEVELS}")


def _run_inline(
    policy: str, plan: Optional[FaultPlan], build: Dict[str, object]
) -> Dict[str, object]:
    """Run one faulted cell inline, tolerating a mid-run workload death."""
    from ..core.builder import build_cluster

    workload_name, workload_kwargs = _WORKLOAD
    from ..runner.registry import make_workload

    cluster = build_cluster(policy=policy, **build)
    controller = ChaosController(cluster, plan) if plan is not None else None
    report = None
    error: Optional[str] = None
    try:
        report = cluster.run(make_workload(workload_name, dict(workload_kwargs)))
    except ReproError as exc:
        # NO RELIABILITY dying with the crashed server *is* the result.
        error = f"{type(exc).__name__}: {exc}"
    extras = EXTRACTORS["resilience"](cluster, report, controller)
    return {"report": report, "extras": extras, "error": error}


def run_resilience(
    policies=RESILIENCE_POLICIES,
    levels=("clean", "light"),
    runner=None,
    pipelined: bool = False,
    pipeline_window: int = 4,
    pipeline_prefetch: int = 4,
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Fault level x policy sweep; returns ``results[level][policy]``.

    Each cell is ``{"report": CompletionReport | None, "extras": dict,
    "error": str | None}`` where ``extras`` carries the integrity
    verdict, the injected-fault trace, and RPC/recovery counters.

    ``pipelined=True`` runs the whole campaign with the PR 4 datapath
    engaged (write-behind queue + prefetcher): coalescing and reordering
    under injected faults must still end CLEAN for every redundant
    policy.
    """
    policies, levels = list(policies), list(levels)
    run = (runner or default_runner()).run
    results: Dict[str, Dict[str, Dict[str, object]]] = {}
    specs, placements = [], []
    for level in levels:
        results[level] = {}
        plan = _level_plan(level)
        for policy in policies:
            build = dict(_BUILD, n_servers=_cell_servers(policy, level))
            if pipelined:
                build.update(
                    pipeline_window=pipeline_window,
                    pipeline_prefetch=pipeline_prefetch,
                )
            dies_by_design = policy == "no-reliability" or (
                level == "correlated" and policy in _SINGLE_TOLERANCE
            )
            if dies_by_design and plan is not None:
                results[level][policy] = _run_inline(policy, plan, build)
                continue
            spec = RunSpec.make(
                _WORKLOAD[0],
                policy,
                workload_kwargs=_WORKLOAD[1],
                overrides=build,
                hook="chaos" if plan is not None else None,
                hook_kwargs=plan.as_kwargs() if plan is not None else None,
                extract=("resilience",),
                label=f"{policy}/{level}",
            )
            specs.append(spec)
            placements.append((level, policy))
    for (level, policy), result in zip(placements, run(specs)):
        results[level][policy] = {
            "report": result.report,
            "extras": result.extras,
            "error": None,
        }
    return results


def render_resilience(results) -> str:
    """Level x policy table: verdict + the accounting that explains it."""
    rows = []
    for level, by_policy in results.items():
        for policy, cell in by_policy.items():
            extras = cell["extras"]
            integrity = extras["integrity"]
            report = cell["report"]
            rows.append(
                [
                    level,
                    policy,
                    extras["verdict"],
                    str(len(integrity["lost"])),
                    str(len(integrity["corrupted"])),
                    str(extras["recoveries"]),
                    str(extras["scrub_recoveries"]),
                    str(extras.get("degraded_reads", 0)),
                    str(extras.get("fragments_rebuilt", 0)),
                    f"{extras['rpc_retries']}/{extras['rpc_timeouts']}",
                    f"{report.etime:.2f}" if report is not None else "died",
                    cell["error"] or "-",
                ]
            )
    return format_table(
        [
            "faults",
            "policy",
            "verdict",
            "lost",
            "corrupt",
            "recov",
            "scrubs",
            "degraded",
            "rebuilt",
            "retry/tmo",
            "etime (s)",
            "workload error",
        ],
        rows,
        title="Resilience campaign: end-to-end page integrity under injected "
        "faults (redundant policies must be CLEAN; NO RELIABILITY is the "
        "paper's lossy baseline)",
    )
