"""Crash detection from load-report silence.

The pager normally discovers a crash when a request fails (§2.2), which
leaves lost pages unprotected until the client happens to touch that
server.  Since servers report their load periodically (§3.2), silence is
a signal: a :class:`Watchdog` watches the client's
:class:`~repro.core.load_reports.ClusterView` and, when a server has
been quiet for ``suspect_after`` intervals, declares it crashed and runs
the policy's recovery *proactively* — restoring redundancy before the
next fault would trip over it.
"""

from __future__ import annotations

from typing import Optional

from ..errors import RecoveryError, ServerCrashed
from ..sim import Interrupt, Process, Simulator
from .client import RemoteMemoryPager
from .load_reports import ClusterView

__all__ = ["Watchdog"]


class Watchdog:
    """Declare silent servers crashed and trigger proactive recovery."""

    def __init__(
        self,
        pager: RemoteMemoryPager,
        view: ClusterView,
        report_interval: float,
        suspect_after: float = 3.0,
        poll: Optional[float] = None,
    ):
        if report_interval <= 0 or suspect_after <= 1:
            raise ValueError(
                "report_interval must be positive and suspect_after > 1 "
                "(declaring a crash within one interval would misfire on "
                "ordinary report jitter)"
            )
        self.pager = pager
        self.view = view
        self.report_interval = report_interval
        self.suspect_after = suspect_after
        self.sim: Simulator = pager.sim
        self.detections = []
        self.process: Process = self.sim.process(self._run(), name="watchdog")

    @property
    def _deadline(self) -> float:
        return self.report_interval * self.suspect_after

    def _run(self):
        try:
            # Give every reporter one interval before expecting anything.
            yield self.sim.timeout(self.report_interval)
            while True:
                yield self.sim.timeout(self.report_interval)
                # Recovery removes a declared-dead server from the
                # policy's set, so each silence is acted on exactly once.
                for server in list(self.pager.policy.servers):
                    if self.view.report_for(server.name) is None:
                        continue  # never reported (not monitored)
                    if self.view.age(server.name) > self._deadline:
                        yield from self._declare_crashed(server)
        except Interrupt:
            return

    def _declare_crashed(self, server):
        """A server went silent: run recovery as if a request had failed."""
        self.detections.append((self.sim.now, server.name))
        try:
            yield from self.pager._handle_crash(ServerCrashed(server.name))
        except RecoveryError:
            # Unrecoverable policy (no redundancy): nothing a watchdog
            # can do beyond noting the loss; requests will surface it.
            pass

    def stop(self) -> None:
        """Stop monitoring."""
        if self.process.is_alive:
            self.process.interrupt("watchdog-stop")
