"""Crash-recovery correctness: a single server crash loses nothing.

All tests run in content mode: every reconstructed page is compared
byte-for-byte with what the client last paged out — XOR parity is
computed over real data, not simulated away.
"""

import pytest

from repro.core import CrashInjector, build_cluster
from repro.errors import RecoveryError
from repro.vm import page_bytes

PAGE = 8192


def cluster_for(policy, **kwargs):
    defaults = dict(n_servers=4, content_mode=True, server_capacity_pages=256)
    if policy == "parity-logging":
        defaults["overflow_fraction"] = 0.25
    defaults.update(kwargs)
    return build_cluster(policy=policy, **defaults)


def drive(cluster, gen):
    def body(gen):
        result = yield from gen
        return result

    return cluster.sim.run_until_complete(cluster.sim.process(body(gen)))


def pageout_all(cluster, pages):
    for page_id, version in pages.items():
        drive(cluster, cluster.pager.pageout(page_id, page_bytes(page_id, version, PAGE)))


def assert_all_recoverable(cluster, pages):
    for page_id, version in pages.items():
        got = drive(cluster, cluster.pager.pagein(page_id))
        assert got == page_bytes(page_id, version, PAGE), f"page {page_id} corrupt"


RELIABLE = ["mirroring", "parity", "parity-logging", "write-through"]


@pytest.mark.parametrize("policy", RELIABLE)
def test_single_server_crash_loses_nothing(policy):
    cluster = cluster_for(policy)
    pages = {p: 1 for p in range(24)}
    pageout_all(cluster, pages)
    cluster.servers[0].crash()
    # The next pagein hits the crash, triggers recovery, and retries.
    assert_all_recoverable(cluster, pages)
    assert cluster.pager.counters["recoveries"] == 1


@pytest.mark.parametrize("policy", RELIABLE)
def test_crash_after_repageouts_recovers_latest_versions(policy):
    cluster = cluster_for(policy)
    pages = {p: 1 for p in range(16)}
    pageout_all(cluster, pages)
    # Supersede half the pages.
    for page_id in range(0, 16, 2):
        pages[page_id] = 2
    pageout_all(cluster, {p: v for p, v in pages.items() if v == 2})
    cluster.servers[1].crash()
    assert_all_recoverable(cluster, pages)


@pytest.mark.parametrize("policy", RELIABLE)
def test_crash_during_pageout_stream(policy):
    """Kill a server mid-stream (after N pageouts land on it)."""
    cluster = cluster_for(policy)
    injector = CrashInjector(cluster.sim)
    injector.crash_after_pageouts(cluster.servers[0], pageouts=5)

    def stream(cluster):
        for page_id in range(64):
            yield from cluster.pager.pageout(
                page_id, page_bytes(page_id, 1, PAGE)
            )

    cluster.sim.run_until_complete(cluster.sim.process(stream(cluster)))
    assert not cluster.servers[0].is_alive
    assert_all_recoverable(cluster, {p: 1 for p in range(64)})


def test_parity_logging_unsealed_group_recovers_via_client_buffer():
    """Footnote 2: the client's own parity buffer covers the open group."""
    cluster = cluster_for("parity-logging", n_servers=4)
    # Three pageouts: group is open (seals at four).
    pages = {p: 1 for p in range(3)}
    pageout_all(cluster, pages)
    assert not any(g.sealed for g in cluster.policy._groups.values() if g.members)
    cluster.servers[0].crash()
    assert_all_recoverable(cluster, pages)


def test_parity_logging_crash_with_inactive_versions():
    """Stale incarnations on the crashed server are cancelled, not
    restored; active pages elsewhere in their groups stay recoverable."""
    cluster = cluster_for("parity-logging", n_servers=4)
    pages = {p: 1 for p in range(8)}
    pageout_all(cluster, pages)
    for page_id in (0, 4):
        pages[page_id] = 2
    pageout_all(cluster, {0: 2, 4: 2})
    cluster.servers[2].crash()
    assert_all_recoverable(cluster, pages)


def test_parity_logging_parity_server_crash_rebuilds_parity():
    cluster = cluster_for("parity-logging", n_servers=4)
    cluster.add_spare_server()  # replacement home for the parity pages
    pages = {p: 1 for p in range(16)}
    pageout_all(cluster, pages)
    cluster.parity_server.crash()

    def recover(cluster):
        yield from cluster.policy.recover(cluster.parity_server)

    drive(cluster, recover(cluster))
    # Parity now lives on the replacement; a data-server crash after the
    # rebuild must still be fully recoverable.
    cluster.servers[3].crash()
    assert_all_recoverable(cluster, pages)


def test_parity_logging_survives_crash_then_second_crash_fails():
    """Single-failure tolerance: a second overlapping crash is fatal."""
    cluster = cluster_for("parity-logging", n_servers=4)
    pages = {p: 1 for p in range(16)}
    pageout_all(cluster, pages)
    cluster.servers[0].crash()
    assert_all_recoverable(cluster, pages)  # first crash: fine
    # Crash two of the remaining servers simultaneously.
    cluster.servers[1].crash()
    cluster.servers[2].crash()
    with pytest.raises((RecoveryError, Exception)):
        assert_all_recoverable(cluster, pages)


def test_mirroring_recovery_restores_two_copy_redundancy():
    cluster = cluster_for("mirroring")
    pages = {p: 1 for p in range(12)}
    pageout_all(cluster, pages)
    crashed = cluster.servers[0]
    crashed.crash()
    assert_all_recoverable(cluster, pages)
    # After recovery, every page again has two live copies.
    for page_id in pages:
        primary, mirror = cluster.policy._placement[page_id]
        assert primary.is_alive and mirror.is_alive
        assert primary.holds(page_id) and mirror.holds(page_id)


def test_write_through_recovery_repopulates_from_disk():
    cluster = cluster_for("write-through")
    pages = {p: 1 for p in range(12)}
    pageout_all(cluster, pages)
    cluster.servers[0].crash()
    assert_all_recoverable(cluster, pages)
    assert cluster.policy.counters["disk_reads"] > 0


def test_recovery_time_recorded():
    cluster = cluster_for("parity-logging")
    pages = {p: 1 for p in range(16)}
    pageout_all(cluster, pages)
    cluster.servers[0].crash()
    assert_all_recoverable(cluster, pages)
    assert cluster.pager.recovery_times.count == 1
    assert cluster.pager.recovery_times.mean > 0


def test_mirroring_recovery_cheaper_than_parity_logging():
    """§2.2: mirroring's recovery overhead is minimal; parity must XOR
    whole groups."""

    def recovery_time(policy):
        cluster = cluster_for(policy)
        pages = {p: 1 for p in range(32)}
        pageout_all(cluster, pages)
        cluster.servers[0].crash()
        assert_all_recoverable(cluster, pages)
        return cluster.pager.recovery_times.mean

    assert recovery_time("mirroring") < recovery_time("parity-logging")


def test_crash_injector_at_time():
    cluster = cluster_for("mirroring")
    injector = CrashInjector(cluster.sim)
    injector.crash_at(cluster.servers[0], at_time=1.0)
    cluster.sim.run(until=2.0)
    assert not cluster.servers[0].is_alive
    assert injector.crashes == [(1.0, cluster.servers[0].name)]


def test_crash_injector_validation():
    cluster = cluster_for("mirroring")
    cluster.sim.run(until=5.0)
    injector = CrashInjector(cluster.sim)
    with pytest.raises(ValueError):
        injector.crash_at(cluster.servers[0], at_time=1.0)
    with pytest.raises(ValueError):
        injector.crash_after_pageouts(cluster.servers[0], pageouts=-1)


def test_crash_after_pageouts_is_exact():
    """Event-driven injection: the crash lands at the exact store that
    crosses the threshold — the old 10 ms poll could let extra pageouts
    slip through its detection window."""
    cluster = cluster_for("mirroring")
    server = cluster.servers[0]
    injector = CrashInjector(cluster.sim)
    injector.crash_after_pageouts(server, pageouts=5)

    def stream(cluster):
        for page_id in range(64):
            yield from cluster.pager.pageout(page_id, page_bytes(page_id, 1, PAGE))

    cluster.sim.run_until_complete(cluster.sim.process(stream(cluster)))
    assert not server.is_alive
    assert server.counters["pageouts"] == 5
    assert injector.crashes and injector.crashes[0][1] == server.name


def test_crash_after_zero_pageouts_is_immediate():
    cluster = cluster_for("mirroring")
    injector = CrashInjector(cluster.sim)
    injector.crash_after_pageouts(cluster.servers[0], pageouts=0)
    assert not cluster.servers[0].is_alive
    assert injector.crashes[0][1] == cluster.servers[0].name
