"""Name → behaviour registries backing :class:`repro.runner.RunSpec`.

Specs must pickle cleanly into worker processes, so anything callable —
workload construction, cluster hooks, post-run metric extraction — is
referenced by a registry name and looked up again on the worker side.
Experiments can register additional entries at import time; a name only
needs to be registered in the process that *resolves* it (workers import
this module fresh, so module-level registration is the rule).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..errors import ConfigurationError

__all__ = [
    "WORKLOADS",
    "HOOKS",
    "EXTRACTORS",
    "register_workload",
    "register_hook",
    "register_extractor",
    "make_workload",
    "make_hook",
    "run_extractors",
]

#: name -> factory(**kwargs) -> Workload
WORKLOADS: Dict[str, Callable[..., Any]] = {}
#: name -> factory(**kwargs) -> hook(cluster) -> optional state
HOOKS: Dict[str, Callable[..., Callable[[Any], Any]]] = {}
#: name -> f(cluster, report, state) -> dict of extras
EXTRACTORS: Dict[str, Callable[[Any, Any, Any], Dict[str, Any]]] = {}


def register_workload(name: str, factory: Callable[..., Any]) -> None:
    """Register (or replace) a workload factory under ``name``."""
    WORKLOADS[name] = factory


def register_hook(name: str, factory: Callable[..., Callable[[Any], Any]]) -> None:
    """Register a cluster-hook factory under ``name``."""
    HOOKS[name] = factory


def register_extractor(
    name: str, extractor: Callable[[Any, Any, Any], Dict[str, Any]]
) -> None:
    """Register a post-run extractor under ``name``."""
    EXTRACTORS[name] = extractor


def make_workload(name: str, kwargs: Dict[str, Any]):
    """Instantiate the registered workload ``name`` with ``kwargs``.

    A ``size_mb`` kwarg routes through the workload class's
    ``from_megabytes`` constructor (the Fig 3/4 input-size sweeps).
    """
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; registered: {sorted(WORKLOADS)}"
        ) from None
    return factory(**kwargs)


def make_hook(name: str, kwargs: Dict[str, Any]) -> Callable[[Any], Any]:
    """Build the registered cluster hook ``name`` with ``kwargs``."""
    try:
        factory = HOOKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown hook {name!r}; registered: {sorted(HOOKS)}"
        ) from None
    return factory(**kwargs)


def run_extractors(names, cluster, report, state) -> Dict[str, Any]:
    """Apply each registered extractor in order; merge their dicts."""
    extras: Dict[str, Any] = {}
    for name in names:
        try:
            extractor = EXTRACTORS[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown extractor {name!r}; registered: {sorted(EXTRACTORS)}"
            ) from None
        extras.update(extractor(cluster, report, state))
    return extras


# --------------------------------------------------------------------------
# Built-in workloads: the paper's six applications plus the synthetics.
# --------------------------------------------------------------------------

def _app_factory(cls) -> Callable[..., Any]:
    def make(size_mb: Optional[float] = None, **kwargs):
        if size_mb is not None:
            return cls.from_megabytes(size_mb, **kwargs)
        return cls(**kwargs)

    return make


def _register_builtin_workloads() -> None:
    from ..workloads import (
        Fft,
        Gauss,
        HotCold,
        ImageFilter,
        KernelBuild,
        Mvec,
        Qsort,
        SequentialScan,
        UniformRandom,
        ZipfAccess,
    )

    for name, cls in (
        ("mvec", Mvec),
        ("gauss", Gauss),
        ("qsort", Qsort),
        ("fft", Fft),
        ("filter", ImageFilter),
        ("cc", KernelBuild),
        ("sequential-scan", SequentialScan),
        ("uniform-random", UniformRandom),
        ("zipf", ZipfAccess),
        ("hot-cold", HotCold),
    ):
        register_workload(name, _app_factory(cls))


# --------------------------------------------------------------------------
# Built-in hooks and extractors: the recurring experiment ingredients.
# --------------------------------------------------------------------------

def _background_load_hook(total_load: float = 0.0, n_sources: int = 4):
    """Attach background offered load to the cluster network (§4.6)."""

    def hook(cluster):
        if total_load > 0:
            from ..net.traffic import attach_background_load

            attach_background_load(
                cluster.network, total_load=total_load, n_sources=n_sources
            )
        return None

    return hook


def _busy_scenario_hook(scenario: str = "idle", probe_period: float = 5.0):
    """§4.5 server-load scenarios plus a CPU-utilisation probe.

    Returns the utilisation list as hook state so the ``server-cpu``
    extractor can report it after the run.
    """

    def hook(cluster):
        from ..cluster.load import CpuBoundLoop, EditorSession

        if scenario == "editor":
            for host in cluster.server_hosts:
                EditorSession(host)
        elif scenario == "cpu-bound":
            for host in cluster.server_hosts:
                CpuBoundLoop(host)
        elif scenario != "idle":
            raise ConfigurationError(f"unknown scenario {scenario!r}")

        utilizations: list = []

        def monitor():
            yield cluster.sim.timeout(1.0)
            while True:
                utilizations[:] = [s.cpu_utilization() for s in cluster.servers]
                yield cluster.sim.timeout(probe_period)

        cluster.sim.process(monitor(), name="cpu-probe")
        return utilizations

    return hook


def _chaos_hook(**plan_kwargs):
    """Apply a :class:`repro.faults.FaultPlan` campaign to the cluster.

    The plan travels as plain kwargs (picklable, cache-fingerprintable);
    the :class:`~repro.faults.ChaosController` it builds is returned as
    hook state so the ``resilience`` extractor can read the fault log.
    """

    def hook(cluster):
        from ..faults import ChaosController, FaultPlan

        return ChaosController(cluster, FaultPlan.from_kwargs(plan_kwargs))

    return hook


def _resilience(cluster, report, state) -> Dict[str, Any]:
    """End-to-end integrity verdict + fault/RPC accounting after a run."""
    from ..faults import check_page_integrity

    integrity = check_page_integrity(cluster)
    rpc = cluster.stack.counters
    extras: Dict[str, Any] = {
        "integrity": integrity.as_dict(),
        "verdict": integrity.verdict,
        "fault_trace": state.fault_trace() if state is not None else [],
        "rpc_retries": rpc["rpc_retries"],
        "rpc_timeouts": rpc["rpc_timeouts"],
        "rpc_aborts": rpc["rpc_aborts"],
        "rpc_corrupt_rejected": rpc["rpc_corrupt_rejected"],
        "recoveries": cluster.pager.counters["recoveries"],
        "scrub_recoveries": cluster.pager.counters["scrub_recoveries"],
    }
    policy_counters = getattr(cluster.policy, "counters", None)
    if policy_counters is not None:
        # Reconstruction accounting (non-zero only for erasure-coded
        # policies): how often redundancy actually did work, and what
        # the GF(256) math cost in simulated CPU microseconds.
        extras["degraded_reads"] = policy_counters["degraded_reads"]
        extras["fragments_rebuilt"] = policy_counters["fragments_rebuilt"]
        extras["recovered_pages"] = policy_counters["recovered_pages"]
        extras["unrecoverable_pages"] = policy_counters["unrecoverable_pages"]
        extras["scrub_repairs"] = policy_counters["scrub_repairs"]
        extras["reconstruct_cpu_us"] = policy_counters["reconstruct_cpu_us"]
        extras["encode_cpu_us"] = policy_counters["encode_cpu_us"]
    if state is not None and state.network is not None:
        extras["network_faults"] = state.network.counters.as_dict()
    return extras


def _network_stats(cluster, report, state) -> Dict[str, Any]:
    stats = cluster.network.stats
    return {
        "collisions": stats.counters["collisions"],
        "frames": stats.counters["frames"],
        "wire_utilization": stats.utilization(),
        "mean_message_latency_ms": stats.message_latency.mean * 1e3,
    }


def _server_cpu(cluster, report, state) -> Dict[str, Any]:
    return {"server_cpu_utilizations": list(state or [])}


def _pager_stats(cluster, report, state) -> Dict[str, Any]:
    pager = cluster.pager
    return {
        "disk_fallback_pageouts": pager.counters["disk_fallback_pageouts"],
        "network_pageouts": pager.policy.counters["pageouts"],
    }


def _register_builtins() -> None:
    _register_builtin_workloads()
    register_hook("background-load", _background_load_hook)
    register_hook("busy-scenario", _busy_scenario_hook)
    register_hook("chaos", _chaos_hook)
    register_extractor("network-stats", _network_stats)
    register_extractor("resilience", _resilience)
    register_extractor("server-cpu", _server_cpu)
    register_extractor("pager-stats", _pager_stats)


_register_builtins()
