"""Design-choice ablations (replacement policy, write-back depth,
eviction batching)."""

from repro.experiments.ablations import (
    render_ablation,
    run_free_batch_ablation,
    run_pageout_window_ablation,
    run_replacement_ablation,
)


def test_replacement_policy_ablation(benchmark, once):
    results = once(benchmark, run_replacement_ablation)
    print(
        "\n"
        + render_ablation(results, "Replacement-policy ablation (GAUSS)", "policy")
    )
    # Clock's ring order defeats alternating sweeps: far more faults.
    assert results["clock"]["pageins"] > 2 * results["lru"]["pageins"]
    # FIFO is no better than LRU here either.
    assert results["lru"]["pageins"] <= results["fifo"]["pageins"]
    # Fewer faults -> faster completion.
    assert results["lru"]["etime"] < results["clock"]["etime"]


def test_pageout_window_ablation(benchmark, once):
    results = once(benchmark, run_pageout_window_ablation)
    print(
        "\n"
        + render_ablation(results, "Pageout-window ablation (GAUSS, remote)", "window")
    )
    # Asynchronous write-back overlaps pageouts with pageins/compute.
    assert results[16]["etime"] < results[1]["etime"]
    # Identical paging volume either way: only the overlap changes.
    outs = {r["pageouts"] for r in results.values()}
    assert max(outs) - min(outs) <= 64


def test_free_batch_ablation(benchmark, once):
    results = once(benchmark, run_free_batch_ablation)
    print(
        "\n"
        + render_ablation(results, "Free-batch ablation (GAUSS, disk)", "batch")
    )
    # Batched eviction lets swap writes stream instead of paying a
    # rotation per page: the DISK baseline depends on it.
    assert results[16]["etime"] < results[1]["etime"]


def test_prefetch_ablation(benchmark, once):
    from repro.experiments.ablations import run_prefetch_ablation

    results = once(benchmark, run_prefetch_ablation)
    print(
        "\n"
        + render_ablation(
            results, "Read-ahead ablation (sequential scan, remote)", "depth"
        )
    )
    # Deeper read-ahead overlaps more pagein latency with compute.
    assert results[8]["etime"] < results[2]["etime"] < results[0]["etime"]
    assert results[0]["prefetched"] == 0
