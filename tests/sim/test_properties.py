"""Property-based tests of the simulation kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator, Store


@settings(max_examples=100, deadline=None)
@given(delays=st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=50))
def test_events_observed_in_nondecreasing_time_order(delays):
    """However timeouts are scheduled, they fire in time order."""
    sim = Simulator()
    observed = []

    def proc(sim, delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    for delay in delays:
        sim.process(proc(sim, delay))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
    assert sim.now == pytest.approx(max(delays))


@settings(max_examples=100, deadline=None)
@given(
    delays=st.lists(
        st.floats(0, 100, allow_nan=False), min_size=2, max_size=30
    )
)
def test_equal_delays_fire_fifo(delays):
    """Ties at one instant break in scheduling order (determinism)."""
    sim = Simulator()
    order = []

    def proc(sim, index, delay):
        yield sim.timeout(delay)
        order.append(index)

    fixed = 5.0
    for index, _ in enumerate(delays):
        sim.process(proc(sim, index, fixed))
    sim.run()
    assert order == list(range(len(delays)))


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_runs_are_reproducible(data):
    """Two identical schedules produce identical event sequences."""
    delays = data.draw(
        st.lists(st.floats(0, 10, allow_nan=False), min_size=1, max_size=20)
    )

    def run_once():
        sim = Simulator()
        log = []

        def proc(sim, index, delay):
            yield sim.timeout(delay)
            log.append((index, sim.now))

        for index, delay in enumerate(delays):
            sim.process(proc(sim, index, delay))
        sim.run()
        return log

    assert run_once() == run_once()


@settings(max_examples=50, deadline=None)
@given(
    items=st.lists(st.integers(), min_size=1, max_size=40),
    capacity=st.one_of(st.none(), st.integers(1, 10)),
)
def test_store_is_fifo_under_any_capacity(items, capacity):
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    received = []

    def producer(sim, store):
        for item in items:
            yield store.put(item)
            yield sim.timeout(0.001)

    def consumer(sim, store):
        for _ in items:
            received.append((yield store.get()))
            yield sim.timeout(0.003)

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert received == items


@settings(max_examples=50, deadline=None)
@given(
    holds=st.lists(st.floats(0.001, 1.0, allow_nan=False), min_size=2, max_size=20),
    capacity=st.integers(1, 4),
)
def test_resource_never_oversubscribed(holds, capacity):
    from repro.sim import Resource

    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    concurrency = {"now": 0, "max": 0}

    def user(sim, resource, hold):
        yield resource.acquire()
        concurrency["now"] += 1
        concurrency["max"] = max(concurrency["max"], concurrency["now"])
        yield sim.timeout(hold)
        concurrency["now"] -= 1
        resource.release()

    for hold in holds:
        sim.process(user(sim, resource, hold))
    sim.run()
    assert concurrency["max"] <= capacity
    assert concurrency["now"] == 0
    assert resource.in_use == 0
