"""Analytic Ethernet fast path == the frame-level CSMA/CD walk, exactly.

The uncontended-medium fast path precomputes every frame boundary and
parks the sender on one kernel event; a second sender devirtualizes the
hold back into the ordinary state machine mid-flight.  These tests pin
the contract: for any arrival pattern, every observable — completion
times, frame/collision counters, wire utilisation, message-latency
tally, backoff RNG stream states — is byte-identical between
``analytic=True`` and ``analytic=False`` runs, and the uncontended path
draws no RNG at all.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PAGE_SIZE, EthernetSpec
from repro.net import EthernetCsmaCd
from repro.sim import RngRegistry, Simulator

_SEED = 11


def _drive(analytic, senders, spec=None):
    """Run a sender schedule; return every observable as one digest.

    ``senders`` is a list of dicts: ``src``/``dst`` hosts, an ``offset``
    before the first message, and ``sizes`` sent back-to-back.
    """
    sim = Simulator()
    net = EthernetCsmaCd(
        sim, spec=spec, rngs=RngRegistry(seed=_SEED), analytic=analytic
    )
    hosts = sorted({h for s in senders for h in (s["src"], s["dst"])})
    for host in hosts:
        net.attach(host)
    done = []

    def sender(idx, plan):
        if plan["offset"]:
            yield sim.timeout(plan["offset"])
        for size in plan["sizes"]:
            yield net.transfer(plan["src"], plan["dst"], size)
            done.append((idx, sim.now))

    for idx, plan in enumerate(senders):
        sim.process(sender(idx, plan), name=f"sender-{idx}")
    sim.run()
    return {
        "done": done,
        "counters": net.stats.counters.as_dict(),
        "utilization": net.stats.utilization(),
        "latency": net.stats.message_latency.as_dict(),
        "drops": net.drops,
        "now": sim.now,
        "rng": [
            net.rngs.stream(f"ethernet.{host}").getstate() for host in hosts
        ],
    }


def _identical(senders, spec=None):
    fast = _drive(True, senders, spec=spec)
    slow = _drive(False, senders, spec=spec)
    assert fast == slow
    return fast


# ------------------------------------------------------------ uncontended

def test_uncontended_stream_identical_and_draws_no_rng():
    digest = _identical(
        [{"src": "a", "dst": "b", "offset": 0.0,
          "sizes": [PAGE_SIZE, 1400, 100, PAGE_SIZE]}]
    )
    assert digest["counters"].get("collisions", 0) == 0
    # No collision ever happened, so the backoff stream was never
    # touched: its state equals a freshly-seeded stream's.
    fresh = RngRegistry(seed=_SEED)
    assert digest["rng"] == [
        fresh.stream("ethernet.a").getstate(),
        fresh.stream("ethernet.b").getstate(),
    ]


def test_uncontended_run_is_one_process_per_message():
    """The analytic hold costs one kernel process per message (the
    completion shim), not one resolver per frame: a PAGE_SIZE message
    fragments into 6 frames, so the frame-level walk spawns ~6x more."""
    def count_processes(analytic):
        sim = Simulator()
        net = EthernetCsmaCd(
            sim, rngs=RngRegistry(seed=_SEED), analytic=analytic
        )
        net.attach("a")
        net.attach("b")

        def sender():
            for _ in range(20):
                yield net.transfer("a", "b", PAGE_SIZE)

        sim.run_until_complete(sim.process(sender()))
        return sim.process_count

    assert count_processes(True) < count_processes(False) / 3


# -------------------------------------------------------- devirtualization

def _hold_boundaries(spec, nbytes):
    """Frame boundaries of a message starting at t=0, as the hold
    computes them (gap end, transmit start, transmit end per frame)."""
    mtu = spec.mtu
    full, rest = divmod(nbytes, mtu)
    sizes = [mtu] * full + ([rest] if rest else [])
    t = 0.0
    bounds = []
    for payload in sizes:
        b = t + spec.interframe_gap
        s = b + spec.slot_time
        e = s + spec.frame_time(payload)
        bounds.append((b, s, e))
        t = e
    return bounds


def _case_offsets(spec, nbytes):
    """One offset inside each window of several frames: the interframe
    gap (devirt case C), the contention slot (case B), mid-transmission
    (case A), plus exact boundaries and past the message end."""
    bounds = _hold_boundaries(spec, nbytes)
    offsets = []
    for k in (0, len(bounds) // 2, len(bounds) - 1):
        b, s, e = bounds[k]
        gap_open = bounds[k - 1][2] if k else 0.0
        offsets += [
            (gap_open + b) / 2,  # case C: in the gap
            (b + s) / 2,         # case B: in the contention slot
            (s + e) / 2,         # case A: mid-transmission
            b, s,                # exact window edges
        ]
    offsets.append(bounds[-1][2] * 1.01)  # after the message completes
    return offsets


@pytest.mark.parametrize(
    "offset", _case_offsets(EthernetSpec(), PAGE_SIZE),
    ids=lambda o: f"{o * 1e6:.1f}us",
)
def test_second_sender_devirtualizes_identically(offset):
    _identical(
        [
            {"src": "a", "dst": "b", "offset": 0.0, "sizes": [PAGE_SIZE]},
            {"src": "c", "dst": "d", "offset": offset, "sizes": [1400]},
        ]
    )


@settings(max_examples=60, deadline=None)
@given(
    offset=st.floats(min_value=0.0, max_value=0.012, allow_nan=False),
    second_size=st.integers(min_value=1, max_value=2 * PAGE_SIZE),
)
def test_arrival_offset_sweep_identical(offset, second_size):
    """Hypothesis sweep over the whole hold window (an 8 KB message runs
    ~8.6 ms): wherever the second sender lands, devirtualization must
    reconstruct the exact frame-level state."""
    _identical(
        [
            {"src": "a", "dst": "b", "offset": 0.0, "sizes": [PAGE_SIZE]},
            {"src": "c", "dst": "d", "offset": offset, "sizes": [second_size]},
        ]
    )


def test_many_senders_random_schedule_identical():
    """A deeper soak: four stations, staggered bursts, repeated
    contention and re-acquired holds between bursts."""
    rng = random.Random(20260808)
    senders = [
        {
            "src": f"h{2 * i}", "dst": f"h{2 * i + 1}",
            "offset": rng.uniform(0.0, 0.03),
            "sizes": [rng.randrange(1, PAGE_SIZE + 1) for _ in range(4)],
        }
        for i in range(4)
    ]
    digest = _identical(senders)
    assert digest["counters"]["messages"] == 16


def test_back_to_back_holds_after_contention():
    """Contention resolves, then the medium goes quiet: later messages
    must re-enter the fast path (and still match frame-level)."""
    digest = _identical(
        [
            {"src": "a", "dst": "b", "offset": 0.0,
             "sizes": [1400, PAGE_SIZE]},
            {"src": "c", "dst": "d", "offset": 0.0, "sizes": [1400]},
            # Arrives long after the contenders drained: uncontended.
            {"src": "a", "dst": "b", "offset": 0.1, "sizes": [PAGE_SIZE]},
        ]
    )
    assert digest["counters"]["collisions"] >= 1


# ------------------------------------------------------------------ gating

def test_env_var_disables_fast_path(monkeypatch):
    monkeypatch.setenv("REPRO_NO_ANALYTIC_ETH", "1")
    assert EthernetCsmaCd(Simulator()).analytic is False
    monkeypatch.delenv("REPRO_NO_ANALYTIC_ETH")
    assert EthernetCsmaCd(Simulator()).analytic is True


def test_chaos_wrapper_pins_frame_level():
    """A fault-injecting decorator disables the fast path outright: the
    chaos digests pin frame-level event sequences."""
    from repro.faults.network import UnreliableNetwork

    sim = Simulator()
    inner = EthernetCsmaCd(sim, rngs=RngRegistry(seed=_SEED))
    assert inner.analytic is True
    UnreliableNetwork(inner, rng=random.Random(1), drop_rate=0.1)
    assert inner.analytic is False

    # A zero-rate wrapper injects nothing and keeps the fast path.
    benign = EthernetCsmaCd(sim, rngs=RngRegistry(seed=_SEED))
    UnreliableNetwork(benign, rng=random.Random(1))
    assert benign.analytic is True


def test_cluster_ab_byte_identical(tmp_path, monkeypatch):
    """Full-cluster A/B on the analytic axis: paging over the analytic
    wire must produce the exact CompletionReport and metrics snapshot
    the frame-level wire does."""
    import dataclasses

    from repro.config import MachineSpec
    from repro.core.builder import build_cluster
    from repro.workloads import Gauss

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    spec = MachineSpec(
        name="analytic-small",
        ram_bytes=2 * 1024 * 1024,
        kernel_resident_bytes=1 * 1024 * 1024,
        page_size=8192,
    )

    def run(analytic):
        cluster = build_cluster(
            policy="mirroring", n_servers=2, seed=7, machine_spec=spec,
            analytic_ethernet=analytic,
        )
        report = cluster.run(Gauss(n=400, passes=2))
        return dataclasses.asdict(report), cluster.metrics.snapshot()

    report_fast, metrics_fast = run(True)
    report_slow, metrics_slow = run(False)
    assert report_fast == report_slow
    assert metrics_fast == metrics_slow
