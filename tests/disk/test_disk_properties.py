"""Property-based disk-substrate tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEC_RZ55, PAGE_SIZE
from repro.sim import Simulator
from repro.disk import CLook, Disk, FCFS, SwapMap


@settings(max_examples=100, deadline=None)
@given(
    a=st.integers(0, DEC_RZ55.capacity_bytes - 1),
    b=st.integers(0, DEC_RZ55.capacity_bytes - 1),
)
def test_seek_time_symmetric_and_bounded(a, b):
    sim = Simulator()
    disk = Disk(sim, DEC_RZ55)
    forward = disk.seek_time(a, b)
    assert forward == disk.seek_time(b, a)
    assert 0.0 <= forward <= disk.seek_time(0, DEC_RZ55.capacity_bytes - 1) + 1e-12


@settings(max_examples=50, deadline=None)
@given(
    offsets=st.lists(
        st.integers(0, DEC_RZ55.capacity_bytes // PAGE_SIZE - 1),
        min_size=1,
        max_size=40,
    )
)
def test_every_request_completes_under_both_schedulers(offsets):
    for scheduler in (FCFS(), CLook()):
        sim = Simulator()
        disk = Disk(sim, DEC_RZ55, scheduler=scheduler)
        done = []

        def submit(sim, disk, offset, index):
            yield disk.read(offset * PAGE_SIZE, PAGE_SIZE)
            done.append(index)

        for index, offset in enumerate(offsets):
            sim.process(submit(sim, disk, offset, index))
        sim.run()
        assert sorted(done) == list(range(len(offsets)))
        assert disk.counters["reads"] == len(offsets)


@settings(max_examples=50, deadline=None)
@given(
    page_ids=st.lists(st.integers(0, 500), min_size=1, max_size=60),
    n_slots=st.integers(1, 64),
)
def test_swap_map_never_double_allocates(page_ids, n_slots):
    from repro.errors import SwapSpaceExhausted

    swap = SwapMap(n_slots)
    assigned = {}
    for page_id in page_ids:
        try:
            slot = swap.assign(page_id)
        except SwapSpaceExhausted:
            assert swap.used == n_slots
            continue
        if page_id in assigned:
            assert slot == assigned[page_id]  # stable
        else:
            assert slot not in assigned.values()  # exclusive
            assigned[page_id] = slot
        assert 0 <= slot < n_slots
    assert swap.used + swap.free == n_slots


def test_clook_no_starvation_under_streaming():
    """A far-away request still gets served while a hot stream hammers
    one region (C-LOOK's wrap guarantees progress)."""
    sim = Simulator()
    disk = Disk(sim, DEC_RZ55, scheduler=CLook())
    served = {}

    def hot_stream(sim, disk):
        for i in range(50):
            yield disk.read((i % 4) * PAGE_SIZE, PAGE_SIZE)

    def far_request(sim, disk):
        yield disk.read(DEC_RZ55.capacity_bytes - PAGE_SIZE, PAGE_SIZE)
        served["far"] = sim.now

    sim.process(hot_stream(sim, disk))
    sim.process(far_request(sim, disk))
    sim.run()
    assert "far" in served
