"""Majority-trend detector unit tests."""

from repro.pipeline import majority_trend


def test_sequential_elects_plus_one():
    assert majority_trend([1, 1, 1, 1]) == 1


def test_stride_elected():
    assert majority_trend([4, 4, 4, 4, 4]) == 4
    assert majority_trend([-2, -2, -2, -2]) == -2


def test_random_elects_nothing():
    assert majority_trend([3, -7, 12, 1, -4, 9]) is None


def test_strict_majority_required():
    # Half is not a majority.
    assert majority_trend([1, 1, 5, 9]) is None
    # One over half is.
    assert majority_trend([1, 1, 1, 5, 9]) == 1


def test_tolerates_minority_noise():
    assert majority_trend([1, 1, 7, 1, 1, -3, 1]) == 1


def test_zero_delta_never_a_trend():
    # Repeated faults on one page must not trigger self-prefetch.
    assert majority_trend([0, 0, 0, 0]) is None


def test_empty_history():
    assert majority_trend([]) is None
