"""RemoteMemoryPager behaviour: fallback, migration, thresholds, daemon."""

import pytest

from repro.core import build_cluster
from repro.errors import SwapSpaceExhausted
from repro.vm import page_bytes

PAGE = 8192


def cluster_for(policy="no-reliability", **kwargs):
    defaults = dict(n_servers=2, content_mode=True, server_capacity_pages=64)
    defaults.update(kwargs)
    return build_cluster(policy=policy, **defaults)


def drive(cluster, gen):
    def body(gen):
        result = yield from gen
        return result

    return cluster.sim.run_until_complete(cluster.sim.process(body(gen)))


def pageout(cluster, page_id, version=1):
    drive(cluster, cluster.pager.pageout(page_id, page_bytes(page_id, version, PAGE)))


def pagein(cluster, page_id):
    return drive(cluster, cluster.pager.pagein(page_id))


def test_disk_fallback_when_servers_full():
    cluster = cluster_for(server_capacity_pages=4)
    for page_id in range(12):  # 2 servers x 4 pages, then overflow
        pageout(cluster, page_id)
    assert cluster.pager.pages_on_local_disk == 4
    assert cluster.pager.counters["disk_fallback_pageouts"] == 4
    # Disk-resident pages still read back correctly.
    for page_id in range(12):
        assert pagein(cluster, page_id) == page_bytes(page_id, 1, PAGE)


def test_no_fallback_configured_raises():
    cluster = cluster_for(server_capacity_pages=2)
    cluster.pager.disk_backend = None
    with pytest.raises(SwapSpaceExhausted):
        for page_id in range(8):
            pageout(cluster, page_id)


def test_repageout_moves_page_off_disk_fallback():
    cluster = cluster_for(server_capacity_pages=4)
    for page_id in range(12):
        pageout(cluster, page_id)
    on_disk = next(iter(cluster.pager._on_disk))
    # Free server room, then re-pageout the disk-resident page.
    cluster.pager.release(0)
    pageout(cluster, on_disk, version=2)
    assert on_disk not in cluster.pager._on_disk
    assert pagein(cluster, on_disk) == page_bytes(on_disk, 2, PAGE)


def test_release_clears_disk_fallback():
    cluster = cluster_for(server_capacity_pages=2)
    for page_id in range(6):
        pageout(cluster, page_id)
    victim = next(iter(cluster.pager._on_disk))
    cluster.pager.release(victim)
    assert victim not in cluster.pager._on_disk


def test_migration_moves_pages_to_spare():
    cluster = cluster_for(server_capacity_pages=64)
    spare = cluster.add_spare_server()
    for page_id in range(32):
        pageout(cluster, page_id)
    loaded = cluster.servers[0]
    held = [p for p, s in cluster.policy._placement.items() if s is loaded]
    moved = drive(cluster, cluster.pager.migrate_from(loaded))
    assert moved == len(held)
    assert loaded.stored_pages == 0
    # All pages remain retrievable, with correct contents.
    for page_id in range(32):
        assert pagein(cluster, page_id) == page_bytes(page_id, 1, PAGE)


def test_migration_limit():
    cluster = cluster_for()
    cluster.add_spare_server()
    for page_id in range(16):
        pageout(cluster, page_id)
    loaded = cluster.servers[0]
    before = loaded.stored_pages
    moved = drive(cluster, cluster.pager.migrate_from(loaded, limit=3))
    assert moved == 3
    assert loaded.stored_pages == before - 3


def test_replicate_disk_pages_back():
    cluster = cluster_for(server_capacity_pages=4)
    for page_id in range(12):
        pageout(cluster, page_id)
    assert cluster.pager.pages_on_local_disk == 4
    cluster.add_spare_server(capacity_pages=64)
    # The spare is registered but not in the policy's server set; pages
    # re-replicate once the policy's own servers free up.
    for page_id in range(4):
        cluster.pager.release(page_id)
    moved = drive(cluster, cluster.pager.replicate_disk_pages_back())
    assert moved == 4
    assert cluster.pager.pages_on_local_disk == 0
    for page_id in range(4, 12):
        assert pagein(cluster, page_id) == page_bytes(page_id, 1, PAGE)


def test_network_threshold_routes_to_disk():
    cluster = cluster_for(
        server_capacity_pages=512,
        network_threshold=0.001,  # absurdly low: everything looks congested
    )
    window = cluster.pager.threshold_window
    for page_id in range(window + 8):
        pageout(cluster, page_id)
    assert cluster.pager.counters["disk_fallback_pageouts"] >= 8


def test_network_threshold_reprobes_after_streak():
    cluster = cluster_for(server_capacity_pages=512, network_threshold=0.001)
    window = cluster.pager.threshold_window
    for page_id in range(window + 2 * window + 4):
        pageout(cluster, page_id)
    # After 2*window disk-routed pageouts the window clears and the
    # network is probed again (policy transfers keep growing).
    assert cluster.policy.transfers > window


def test_threshold_disabled_by_default():
    cluster = cluster_for(server_capacity_pages=512)
    for page_id in range(40):
        pageout(cluster, page_id)
    assert cluster.pager.counters["disk_fallback_pageouts"] == 0


def test_daemon_serializes_policy_pageouts():
    """Concurrent pageouts must not interleave inside the policy."""
    cluster = build_cluster(
        policy="parity-logging", n_servers=4, overflow_fraction=0.25,
        content_mode=True, server_capacity_pages=256,
    )
    sim = cluster.sim
    done = []

    def one(page_id):
        yield from cluster.pager.pageout(page_id, page_bytes(page_id, 1, PAGE))
        done.append(page_id)

    for page_id in range(16):
        sim.process(one(page_id))
    sim.run()
    assert len(done) == 16
    # The round-robin invariant survives concurrency: one member per
    # server per group.
    for group in cluster.policy._groups.values():
        names = [m.server.name for m in group.members]
        assert len(names) == len(set(names))


def test_transfers_property_reflects_policy():
    cluster = cluster_for()
    pageout(cluster, 1)
    pagein(cluster, 1)
    assert cluster.pager.transfers == cluster.policy.transfers == 2
