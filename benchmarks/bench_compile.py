"""Trace-compiler benchmark: compiled replay vs interpreted A/B.

Three PR 5 measurements, one JSON summary (``BENCH_pr5.json``):

* **compile A/B** — a reference-dense paging workload (hot set sized to
  memory, long cold tail: every reference walks the MMU/replacement hot
  loop but only cold misses fault) swept across three reliability
  policies.  The schedule cache is warmed by the first cell — the
  remaining cells replay the *same* cached schedule, so the sweep is
  O(faults) instead of O(references).  Acceptance requires >= 3x
  end-to-end (warm sweep vs the identical sweep with ``--no-compile``
  semantics, i.e. ``compile_schedules=False``).
* **paper-scale A/B** — the fig2 GAUSS/parity-logging cell compiled vs
  interpreted, reported but *unthresholded*: at paper scale the wire
  simulation dominates wall-clock, so the per-reference savings are
  real but small — the honest number belongs in the record, not behind
  a gate.
* **kernel guard** — the events/sec microbenchmark from
  :mod:`bench_kernel` against the in-tree frozen seed and PR-1 kernels
  on the same machine in the same run; the < 3% regression budget
  guards the simulator core the replay path leans on.

The PR 6 measurement rides the same harness under ``--paper-scale``
(``BENCH_pr6.json``):

* **paper-scale sweep** — the full-size GAUSS workload swept across
  three reliability policies with the effect-capsule tier enabled
  (``REPRO_EFFECT_CACHE=1``).  The cold sweep compiles schedules and
  records one capsule per cell; the warm sweep replays each capsule in
  O(1) kernel events.  Acceptance requires the warm sweep >= 10x the
  identical ``--no-compile`` sweep with byte-identical
  ``CompletionReport``s and metric snapshots, and the analytic-Ethernet
  axis (``analytic_ethernet=False``) byte-identical as well.

Run as a script for the JSON record, ``--check`` to enforce the
acceptance thresholds (CI's bench-regression job does both)::

    PYTHONPATH=src python benchmarks/bench_compile.py --out BENCH_pr5.json --check
    PYTHONPATH=src python benchmarks/bench_compile.py --paper-scale --out BENCH_pr6.json --check

or under pytest for a smaller-sized smoke check.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from time import perf_counter

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for _path in (_HERE, _SRC):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from bench_kernel import measure_kernels  # noqa: E402

#: PR 5 acceptance thresholds, enforced by ``--check``.
COMPILE_SPEEDUP_FLOOR = 3.0
KERNEL_REGRESSION_BUDGET = 0.03

#: PR 6 acceptance threshold (``--paper-scale --check``): warm
#: effect-capsule sweep vs the identical interpreted sweep.
PAPER_SWEEP_SPEEDUP_FLOOR = 10.0

#: The multi-policy sweep.  The schedule key is reliability-blind (the
#: policy changes how faults are *serviced*, never which references
#: fault), so all three cells share one cached schedule.
SWEEP_POLICIES = ("no-reliability", "mirroring", "parity-logging")


# --------------------------------------------------------------------------
# Compile A/B: reference-dense sweep, warm schedule cache.
# --------------------------------------------------------------------------

def _bench_spec():
    from repro.config import MachineSpec

    # 2 MB RAM / 1 MB kernel / 8 KB pages -> 128 user frames.
    return MachineSpec(
        name="bench-compile",
        ram_bytes=2 * 1024 * 1024,
        kernel_resident_bytes=1 * 1024 * 1024,
        page_size=8192,
    )


def _bench_workload(n_refs: int):
    from repro.workloads import HotCold

    # Hot set just under the 128 user frames; the 0.05% cold tail misses
    # almost every time, so the run faults steadily (hundreds of faults)
    # while the vast majority of references exercise only the
    # per-reference hot loop the compiler eliminates.
    return HotCold(
        hot_pages=120, cold_pages=4096, n_refs=n_refs,
        hot_fraction=0.9995, cpu_per_page=1e-4, seed=42,
    )


def _run_sweep(n_refs: int, compile_on: bool) -> dict:
    from repro.core.builder import build_cluster

    spec = _bench_spec()
    reports = {}
    start = perf_counter()
    for policy in SWEEP_POLICIES:
        cluster = build_cluster(
            policy=policy, n_servers=2, seed=9, machine_spec=spec,
            compile_schedules=compile_on,
        )
        reports[policy] = cluster.run(_bench_workload(n_refs))
    wall = perf_counter() - start
    return {"wall_seconds": wall, "reports": reports}


def measure_compile_ab(n_refs: int = 400_000, repeats: int = 3) -> dict:
    """Warm-cache compiled sweep vs the identical interpreted sweep."""
    previous = os.environ.get("REPRO_CACHE_DIR")
    with tempfile.TemporaryDirectory(prefix="bench-compile-") as cache_dir:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        try:
            # Cold: first-ever sweep pays one compilation, then two
            # cache hits.  Warm: every cell replays the cached schedule.
            cold = _run_sweep(n_refs, compile_on=True)
            warm_wall = min(
                _run_sweep(n_refs, compile_on=True)["wall_seconds"]
                for _ in range(repeats)
            )
            interpreted = min(
                _run_sweep(n_refs, compile_on=False)["wall_seconds"]
                for _ in range(repeats)
            )
        finally:
            if previous is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = previous

    reports = cold["reports"]
    sample = reports[SWEEP_POLICIES[0]]
    return {
        "workload": "hot-cold",
        "n_refs": n_refs,
        "faults": {name: r.faults for name, r in reports.items()},
        "etime": {name: round(r.etime, 4) for name, r in reports.items()},
        "sample_pageins": sample.pageins,
        "policies": list(SWEEP_POLICIES),
        "cold_seconds": round(cold["wall_seconds"], 4),
        "warm_seconds": round(warm_wall, 4),
        "interpreted_seconds": round(interpreted, 4),
        "cold_speedup": round(interpreted / cold["wall_seconds"], 2),
        "speedup": round(interpreted / warm_wall, 2),
    }


# --------------------------------------------------------------------------
# Paper-scale secondary: fig2 GAUSS cell, compiled vs interpreted.
# --------------------------------------------------------------------------

def _run_gauss(compile_on: bool) -> dict:
    from repro.core.builder import build_cluster
    from repro.workloads import Gauss

    cluster = build_cluster(
        policy="parity-logging", n_servers=4, overflow_fraction=0.10,
        compile_schedules=compile_on,
    )
    start = perf_counter()
    report = cluster.run(Gauss())
    wall = perf_counter() - start
    return {"wall_seconds": wall, "etime": report.etime, "faults": report.faults}


def measure_paper_scale_ab(repeats: int = 3) -> dict:
    previous = os.environ.get("REPRO_SCHEDULE_CACHE")
    os.environ["REPRO_SCHEDULE_CACHE"] = "0"  # measure compile + replay honestly
    try:
        compiled = min(
            _run_gauss(True)["wall_seconds"] for _ in range(repeats)
        )
        interp_run = _run_gauss(False)
        interpreted = min(
            [interp_run["wall_seconds"]]
            + [_run_gauss(False)["wall_seconds"] for _ in range(repeats - 1)]
        )
    finally:
        if previous is None:
            os.environ.pop("REPRO_SCHEDULE_CACHE", None)
        else:
            os.environ["REPRO_SCHEDULE_CACHE"] = previous
    return {
        "app": "gauss",
        "policy": "parity-logging",
        "etime": round(interp_run["etime"], 4),
        "faults": interp_run["faults"],
        "compiled_seconds": round(compiled, 4),
        "interpreted_seconds": round(interpreted, 4),
        # Unthresholded: the wire simulation dominates this cell, so the
        # per-reference savings show up as a modest wall-clock trim.
        "speedup": round(interpreted / compiled, 2),
    }


# --------------------------------------------------------------------------
# PR 6 paper-scale sweep: effect capsules + analytic Ethernet, both A/B'd.
# --------------------------------------------------------------------------

def _paper_sweep(compile_on: bool, analytic=None) -> dict:
    """One full-size GAUSS sweep; returns wall time and every report."""
    import dataclasses

    from repro.core.builder import build_cluster
    from repro.workloads import Gauss

    reports = {}
    snapshots = {}
    start = perf_counter()
    for policy in SWEEP_POLICIES:
        cluster = build_cluster(
            policy=policy, n_servers=4, overflow_fraction=0.10,
            compile_schedules=compile_on, analytic_ethernet=analytic,
        )
        reports[policy] = dataclasses.asdict(cluster.run(Gauss()))
        snapshots[policy] = cluster.metrics.snapshot()
    wall = perf_counter() - start
    return {"wall": wall, "reports": reports, "snapshots": snapshots}


def measure_paper_sweep(repeats: int = 3) -> dict:
    """Warm capsule-replay sweep vs the interpreted sweep, plus the
    analytic-Ethernet A/B, all byte-compared."""
    saved = {
        name: os.environ.get(name)
        for name in ("REPRO_CACHE_DIR", "REPRO_EFFECT_CACHE")
    }
    with tempfile.TemporaryDirectory(prefix="bench-paper-") as cache_dir:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        os.environ["REPRO_EFFECT_CACHE"] = "1"
        try:
            # Cold: compiles each cell's schedule and records its effect
            # capsule.  Warm: every cell replays its capsule in O(1)
            # kernel events.
            cold = _paper_sweep(True)
            warm_runs = [_paper_sweep(True) for _ in range(repeats)]
            interpreted_runs = [_paper_sweep(False) for _ in range(repeats)]
            # The two remaining axes, once each (identity, not timing):
            # frame-level Ethernet under both execution modes.
            frame_interp = _paper_sweep(False, analytic=False)
            frame_warm = _paper_sweep(True, analytic=False)
        finally:
            for name, value in saved.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value

    interpreted = interpreted_runs[0]
    warm = warm_runs[0]
    identical_reports = all(
        run["reports"] == interpreted["reports"]
        for run in [cold, frame_interp, frame_warm] + warm_runs
    )
    identical_metrics = all(
        run["snapshots"] == interpreted["snapshots"]
        for run in [cold, frame_interp, frame_warm] + warm_runs
    )
    warm_wall = min(run["wall"] for run in warm_runs)
    interp_wall = min(run["wall"] for run in interpreted_runs)
    sample = interpreted["reports"][SWEEP_POLICIES[0]]
    return {
        "app": "gauss",
        "policies": list(SWEEP_POLICIES),
        "faults": sample["faults"],
        "etime": {
            name: round(r["etime"], 4)
            for name, r in interpreted["reports"].items()
        },
        "cold_seconds": round(cold["wall"], 4),
        "warm_seconds": round(warm_wall, 4),
        "interpreted_seconds": round(interp_wall, 4),
        "frame_level_interpreted_seconds": round(frame_interp["wall"], 4),
        "identical_reports": identical_reports,
        "identical_metrics": identical_metrics,
        "cold_speedup": round(interp_wall / cold["wall"], 2),
        "speedup": round(interp_wall / warm_wall, 2),
    }


def check_paper_sweep(summary: dict) -> list:
    """The PR 6 acceptance thresholds; returns a list of failures."""
    failures = []
    sweep = summary["paper_sweep"]
    if sweep["speedup"] < PAPER_SWEEP_SPEEDUP_FLOOR:
        failures.append(
            f"paper-scale warm sweep {sweep['speedup']:.2f}x < "
            f"{PAPER_SWEEP_SPEEDUP_FLOOR}x floor"
        )
    if not sweep["identical_reports"]:
        failures.append("paper-scale sweep reports diverged across fast paths")
    if not sweep["identical_metrics"]:
        failures.append("paper-scale sweep metrics diverged across fast paths")
    return failures


# --------------------------------------------------------------------------
# Assembly + threshold check.
# --------------------------------------------------------------------------

def run_benchmarks(
    n_events: int = 200_000, repeats: int = 3, n_refs: int = 400_000,
) -> dict:
    return {
        "kernel": measure_kernels(n_events, repeats),
        "compile_ab": measure_compile_ab(n_refs=n_refs, repeats=repeats),
        "paper_scale_ab": measure_paper_scale_ab(repeats=repeats),
    }


def check(summary: dict) -> list:
    """The PR 5 acceptance thresholds; returns a list of failures."""
    failures = []
    ab = summary["compile_ab"]
    if ab["speedup"] < COMPILE_SPEEDUP_FLOOR:
        failures.append(
            f"compiled sweep {ab['speedup']:.2f}x < "
            f"{COMPILE_SPEEDUP_FLOOR}x floor"
        )
    for path_name, path in summary["kernel"].items():
        overhead = path["tracer_overhead_vs_pr1"]
        if overhead >= KERNEL_REGRESSION_BUDGET:
            failures.append(
                f"kernel {path_name}: {overhead:.2%} slower than the frozen "
                f"PR-1 kernel (budget {KERNEL_REGRESSION_BUDGET:.0%})"
            )
    if summary["paper_scale_ab"]["speedup"] < 1.0:
        failures.append(
            "paper-scale compiled run slower than interpreted "
            f"({summary['paper_scale_ab']['speedup']}x)"
        )
    return failures


# --------------------------------------------------------------------------
# pytest smoke checks (smaller stream; the speedup floor still holds).
# --------------------------------------------------------------------------

def test_compiled_sweep_speedup(benchmark, once):
    results = once(benchmark, measure_compile_ab, n_refs=150_000, repeats=2)
    print("\n" + json.dumps(results, indent=2))
    assert results["speedup"] >= COMPILE_SPEEDUP_FLOOR
    assert all(f > 0 for f in results["faults"].values())


def test_paper_scale_not_slower(benchmark, once):
    results = once(benchmark, measure_paper_scale_ab, repeats=2)
    print("\n" + json.dumps(results, indent=2))
    assert results["speedup"] >= 1.0


def test_paper_sweep_capsules_fast_and_identical(benchmark, once):
    results = once(benchmark, measure_paper_sweep, repeats=2)
    print("\n" + json.dumps(results, indent=2))
    assert results["identical_reports"]
    assert results["identical_metrics"]
    assert results["speedup"] >= PAPER_SWEEP_SPEEDUP_FLOOR


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=200_000,
                        help="kernel microbenchmark chain length")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats (default 3)")
    parser.add_argument("--refs", type=int, default=400_000,
                        help="reference-stream length for the compile A/B")
    parser.add_argument("--paper-scale", action="store_true",
                        help="run only the PR 6 paper-scale capsule sweep")
    parser.add_argument("--check", action="store_true",
                        help="enforce the acceptance thresholds")
    parser.add_argument("--out", default="-", metavar="PATH",
                        help="write JSON here ('-' = stdout)")
    args = parser.parse_args(argv)

    if args.paper_scale:
        summary = {"paper_sweep": measure_paper_sweep(repeats=args.repeats)}
    else:
        summary = run_benchmarks(
            n_events=args.events, repeats=args.repeats, n_refs=args.refs,
        )
    text = json.dumps(summary, indent=2, sort_keys=True)
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")

    if args.check:
        failures = (
            check_paper_sweep(summary) if args.paper_scale else check(summary)
        )
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        which = "PR 6" if args.paper_scale else "PR 5"
        print(f"all {which} benchmark thresholds met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
