"""Discrete-event simulation kernel used by every substrate model."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
)
from .monitor import Counter, Tally, TimeWeighted, UtilizationTracker
from .resources import Container, Resource, Store
from .rng import RngRegistry

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "StopSimulation",
    "Resource",
    "Store",
    "Container",
    "RngRegistry",
    "Counter",
    "Tally",
    "TimeWeighted",
    "UtilizationTracker",
]
