#!/usr/bin/env python3
"""Busy cluster: servers under native load, and the §2.1 migration path.

Part 1 (§4.5): run GAUSS against servers whose owners are editing in X/vi
and against servers running a CPU-bound while(1) loop; completion time
barely moves and server CPU stays under 15%.

Part 2 (§2.1): a donor workstation's native memory demand surges; its
server sheds pages to disk and advises the client, which migrates the
pages to another server and re-replicates disk-fallback pages when
memory frees up.

Run:  python examples/busy_cluster.py
"""

from repro import Gauss, build_cluster
from repro.cluster import CpuBoundLoop, EditorSession, MemorySurge
from repro.vm import page_bytes


def part1_busy_servers() -> None:
    print("=== §4.5: busy workstations as servers ===")
    results = {}
    for scenario in ("idle", "editor", "cpu-bound"):
        cluster = build_cluster(policy="no-reliability", n_servers=2)
        if scenario == "editor":
            for host in cluster.server_hosts:
                EditorSession(host)
        elif scenario == "cpu-bound":
            for host in cluster.server_hosts:
                CpuBoundLoop(host)
        report = cluster.run(Gauss())
        util = max(s.cpu_utilization() for s in cluster.servers)
        results[scenario] = report.etime
        print(f"  servers {scenario:10s}: {report.etime:6.2f}s "
              f"(max server CPU {util:.1%})")
    slowdown = results["cpu-bound"] / results["idle"] - 1
    print(f"  while(1) on every server host cost just {slowdown:+.1%} "
          f"(paper: within 7%)\n")


def part2_migration() -> None:
    print("=== §2.1: server memory pressure and page migration ===")
    cluster = build_cluster(
        policy="no-reliability", n_servers=2, content_mode=True,
        server_capacity_pages=256,
    )
    spare = cluster.add_spare_server()
    sim = cluster.sim
    pager = cluster.pager

    def scenario():
        # Fill both servers with client pages.
        for page_id in range(128):
            yield from pager.pageout(page_id, page_bytes(page_id, 1, 8192))
        loaded = cluster.servers[0]
        print(f"  {loaded.name} holds {loaded.stored_pages} pages")
        # The owner of server-0's host starts a memory-hungry job.
        host = loaded.host
        host.set_native_pages(host.total_pages - 64)
        print(f"  native surge on {host.name}: server now advising="
              f"{loaded.advising}, shed {loaded.counters['shed_to_disk']} "
              f"pages to its local disk")
        # The client migrates pages off the advising server.
        moved = yield from pager.migrate_from(loaded)
        print(f"  client migrated {moved} pages to "
              f"{spare.name} / local disk "
              f"(disk fallback: {pager.pages_on_local_disk})")
        # Later, memory frees up elsewhere: replicate disk pages back.
        replicated = yield from pager.replicate_disk_pages_back()
        print(f"  re-replicated {replicated} disk pages to servers "
              f"(disk fallback now: {pager.pages_on_local_disk})")
        # Every page still correct.
        for page_id in range(128):
            got = yield from pager.pagein(page_id)
            assert got == page_bytes(page_id, 1, 8192)
        print("  all 128 pages verified byte-for-byte after migration")

    sim.run_until_complete(sim.process(scenario()))


def main() -> None:
    part1_busy_servers()
    part2_migration()


if __name__ == "__main__":
    main()
