"""The parallel experiment runner.

Every figure in the paper is a matrix of independent, deterministic
simulation runs, so regenerating the evaluation is embarrassingly
parallel: :class:`ExperimentRunner` fans :class:`RunSpec`s out over a
``ProcessPoolExecutor`` and reassembles results *in spec order* —
completion order never leaks into output, so ``--jobs 4`` produces
byte-identical tables to ``--jobs 1``.  A content-addressed result
cache (see :mod:`repro.runner.cache`) short-circuits cells that have
already been computed for identical code and configuration.

Fan-out overhead is kept off the critical path for campaign-scale
matrices (hundreds of cells across many ``run()`` calls):

* the worker pool is created lazily on first parallel ``run()`` and
  **reused** across calls — one fork-and-import cost per campaign, not
  per figure;
* the read-only GF(256) codec tables are primed in the parent before
  the pool forks, so workers share them copy-on-write;
* specs are submitted in **chunks** (a few per worker), so dispatch and
  result pickling scale with worker count, not cell count;
* cache probes go through one batched directory listing instead of a
  ``stat`` miss per cold cell.

The module also owns the process-wide default runner the CLI
configures (``--jobs`` / ``--no-cache`` / ``--cache-dir``); library
callers that pass no explicit runner get a serial, uncached one.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence

from ..log import get_logger
from ..vm.machine import CompletionReport
from .cache import ResultCache
from .execute import execute_chunk, execute_spec, prime_shared_tables
from .spec import RunResult, RunSpec

log = get_logger(__name__)

__all__ = [
    "ExperimentRunner",
    "configure_default_runner",
    "default_runner",
]


class ExperimentRunner:
    """Execute :class:`RunSpec`s, in parallel when asked, cached when told.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs every spec inline in
        this process; ``N > 1`` fans out over a process pool.  ``0`` or
        ``None`` means "all cores" (``os.cpu_count()``).
    use_cache:
        Enable the on-disk result cache.  Off by default for library use
        so tests and notebooks stay hermetic; the CLI turns it on.
    cache_dir:
        Cache location; defaults to ``$REPRO_CACHE_DIR`` or the XDG
        cache home (``~/.cache/repro``).
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        use_cache: bool = False,
        cache_dir=None,
    ):
        if jobs is None or jobs == 0:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if use_cache else None
        )
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------ pool
    #: Submission granularity: chunks per worker.  Small enough that one
    #: slow cell cannot idle the pool for long, large enough that a
    #: 500-cell campaign ships ~tens of pickled tasks, not 500.
    _CHUNKS_PER_WORKER = 4

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent worker pool, created on first parallel run.

        The pool outlives individual :meth:`run` calls: a campaign that
        regenerates every figure pays one pool spin-up (fork + import
        of the simulation packages) instead of one per call.  Codec
        tables are primed *before* the fork so workers share them
        read-only; ``prime_shared_tables`` also rides along as the pool
        initializer for spawn-based start methods.
        """
        if self._pool is None:
            prime_shared_tables()
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=prime_shared_tables
            )
        return self._pool

    def close(self) -> None:
        """Shut down the persistent pool (idempotent; pool respawns on use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self):  # pragma: no cover - interpreter-exit ordering
        try:
            self.close()
        except Exception:
            pass

    @staticmethod
    def _chunked(pending: Sequence[int], n_chunks: int) -> List[List[int]]:
        """Split indices into ``n_chunks`` contiguous, near-equal batches."""
        size, extra = divmod(len(pending), n_chunks)
        chunks, start = [], 0
        for rank in range(n_chunks):
            stop = start + size + (1 if rank < extra else 0)
            chunks.append(list(pending[start:stop]))
            start = stop
        return [chunk for chunk in chunks if chunk]

    # ------------------------------------------------------------------ core
    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Run every spec; results ordered by spec, not by completion."""
        specs = list(specs)
        results: List[Optional[RunResult]] = [None] * len(specs)

        if self.cache is not None:
            cached_entries = self.cache.get_many(specs)
        else:
            cached_entries = [None] * len(specs)

        pending: List[int] = []
        for index, (spec, cached) in enumerate(zip(specs, cached_entries)):
            if cached is not None:
                log.debug("cache hit: %s", spec.label or spec.workload)
                report, extras = cached
                results[index] = RunResult(
                    spec=spec, report=report, extras=extras, cached=True
                )
            else:
                pending.append(index)

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                workers = min(self.jobs, len(pending))
                chunks = self._chunked(
                    pending, min(len(pending), workers * self._CHUNKS_PER_WORKER)
                )
                log.info(
                    "running %d spec(s) over %d worker process(es) "
                    "in %d chunk(s)",
                    len(pending), workers, len(chunks),
                )
                pool = self._ensure_pool()
                try:
                    futures = [
                        pool.submit(execute_chunk, [specs[i] for i in chunk])
                        for chunk in chunks
                    ]
                    for chunk, future in zip(chunks, futures):
                        for index, result in zip(chunk, future.result()):
                            results[index] = result
                except BaseException:
                    # A broken pool (worker killed, unpicklable payload)
                    # must not poison later runs: drop it and let the
                    # next call fork a fresh one.
                    self.close()
                    raise
            else:
                log.debug("running %d spec(s) inline", len(pending))
                for index in pending:
                    results[index] = execute_spec(specs[index])
            if self.cache is not None:
                for index in pending:
                    result = results[index]
                    self.cache.put(result.spec, result.report, result.extras)

        return results  # type: ignore[return-value]

    def run_one(self, spec: RunSpec) -> RunResult:
        """Run a single spec (cache-aware, always inline)."""
        return self.run([spec])[0]

    # ----------------------------------------------------------- conveniences
    def run_matrix(
        self,
        workloads: Iterable[str],
        policies: Iterable[str],
        **common,
    ) -> Dict[str, Dict[str, CompletionReport]]:
        """Run a workloads × policies matrix; returns nested reports.

        ``common`` keywords are forwarded to every :meth:`RunSpec.make`
        call (``overrides``, ``seed``, ``hook``, …).
        """
        workloads = list(workloads)
        policies = list(policies)
        specs = [
            RunSpec.make(workload, policy, label=f"{workload}/{policy}", **common)
            for workload in workloads
            for policy in policies
        ]
        results = self.run(specs)
        reports: Dict[str, Dict[str, CompletionReport]] = {}
        flat = iter(results)
        for workload in workloads:
            reports[workload] = {}
            for policy in policies:
                reports[workload][policy] = next(flat).report
        return reports


# --------------------------------------------------------------------------
# Process-wide default runner (configured by the CLI, serial otherwise).
# --------------------------------------------------------------------------

_default: Optional[ExperimentRunner] = None


def configure_default_runner(
    jobs: Optional[int] = 1,
    use_cache: bool = False,
    cache_dir=None,
) -> ExperimentRunner:
    """Install the runner that experiment modules use by default."""
    global _default
    _default = ExperimentRunner(jobs=jobs, use_cache=use_cache, cache_dir=cache_dir)
    return _default


def default_runner() -> ExperimentRunner:
    """The configured default runner, or a serial uncached one."""
    if _default is not None:
        return _default
    return ExperimentRunner()
