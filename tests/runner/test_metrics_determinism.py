"""meta["metrics"] rides with every result, identically everywhere.

The full-grid determinism test already compares whole reports (meta
included) across serial/parallel/cache; these are the focused checks
that the metrics payload itself exists, is JSON-safe, and survives the
cache round-trip and worker-process boundary bit-for-bit.
"""

import json

from repro.experiments.harness import merged_metrics
from repro.runner import ExperimentRunner, RunSpec

# n=1600 (~20 MB matrix) pages on the default machine, so every
# namespace below actually accumulates counts; still runs in < 1 s.
SPECS = [
    RunSpec.make("gauss", "no-reliability", workload_kwargs={"n": 1600}),
    RunSpec.make("gauss", "disk", workload_kwargs={"n": 1600}),
]


def test_metrics_identical_across_jobs_and_cache(tmp_path):
    serial = ExperimentRunner(jobs=1, use_cache=False).run(SPECS)
    parallel = ExperimentRunner(jobs=2, use_cache=True, cache_dir=tmp_path).run(SPECS)
    warm = ExperimentRunner(jobs=2, use_cache=True, cache_dir=tmp_path).run(SPECS)
    assert all(result.cached for result in warm)
    for a, b, c in zip(serial, parallel, warm):
        metrics = a.report.meta["metrics"]
        assert metrics, "run produced an empty metrics snapshot"
        assert metrics == b.report.meta["metrics"] == c.report.meta["metrics"]
        json.dumps(metrics)  # JSON-safe: no NaN/inf/objects


def test_metrics_namespaces_present():
    result = ExperimentRunner().run_one(SPECS[0])
    metrics = result.report.meta["metrics"]
    assert metrics["pager.pageouts"] == result.report.pageouts
    assert any(key.startswith("server.server-0.") for key in metrics)
    assert "net.utilization" in metrics
    assert "net.protocol.page_transfers" in metrics
    assert "net.message_latency.__tally__" in metrics


def test_merged_metrics_sums_counters_across_runs():
    results = ExperimentRunner().run(SPECS)
    reports = [result.report for result in results]
    merged = merged_metrics(reports)
    assert merged["pager.pageouts"] == sum(r.pageouts for r in reports)
    assert merged["machine.pageins"] == sum(
        r.meta["metrics"]["machine.pageins"] for r in reports
    )
