"""UnreliableNetwork wrapper: semantics, draw schedule, determinism."""

import pytest

from repro.core import build_cluster
from repro.faults.network import UnreliableNetwork
from repro.net.protocol import RetrySpec


class ScriptedRng:
    """Returns a scripted sequence of variates, then 0.99 (no faults)."""

    def __init__(self, values):
        self.values = list(values)

    def random(self):
        return self.values.pop(0) if self.values else 0.99


def make_cluster(**kwargs):
    defaults = dict(policy="no-reliability", n_servers=2)
    defaults.update(kwargs)
    return build_cluster(**defaults)


def wrap(cluster, rng, **rates):
    net = UnreliableNetwork(cluster.network, rng=rng, **rates)
    cluster.stack.network = net
    cluster.network = net
    return net


def drive(cluster, gen):
    def body(gen):
        result = yield from gen
        return result

    return cluster.sim.run_until_complete(cluster.sim.process(body(gen)))


def send_one(cluster, nbytes=1024):
    drive(
        cluster,
        cluster.stack.send("client", cluster.server_hosts[0].name, nbytes),
    )


def test_rate_validation():
    cluster = make_cluster()
    with pytest.raises(ValueError, match="drop_rate"):
        UnreliableNetwork(cluster.network, rng=ScriptedRng([]), drop_rate=1.0)
    with pytest.raises(ValueError, match="corrupt_rate"):
        UnreliableNetwork(cluster.network, rng=ScriptedRng([]), corrupt_rate=-0.1)
    with pytest.raises(ValueError, match="max_extra_delay"):
        UnreliableNetwork(cluster.network, rng=ScriptedRng([]), max_extra_delay=-1)


def test_clean_transfer_passes_through():
    cluster = make_cluster()
    net = wrap(cluster, ScriptedRng([]), drop_rate=0.5, corrupt_rate=0.5)
    send_one(cluster)
    assert net.counters.as_dict() == {}


def test_drop_withholds_completion_but_burns_wire():
    """A dropped message still crosses the wire; only the waiter starves."""
    cluster = make_cluster()
    # Draw order per transfer: drop, corrupt, duplicate, delay.
    net = wrap(cluster, ScriptedRng([0.0, 0.99, 0.99, 0.99]), drop_rate=0.01)
    cluster.stack.retry = RetrySpec(timeout=0.05, max_attempts=3)
    frames_before = cluster.network.stats.counters["frames"]
    send_one(cluster)  # first attempt dropped, second succeeds
    assert net.counters["drops"] == 1
    assert cluster.stack.counters["rpc_timeouts"] == 1
    assert cluster.stack.counters["rpc_retries"] == 1
    assert cluster.network.stats.counters["frames"] > frames_before


def test_corrupt_delivery_is_rejected_and_resent():
    cluster = make_cluster()
    net = wrap(cluster, ScriptedRng([0.99, 0.0, 0.99, 0.99]), corrupt_rate=0.01)
    cluster.stack.retry = RetrySpec(timeout=0.05, max_attempts=3)
    send_one(cluster)
    assert net.counters["wire_corruptions"] == 1
    assert cluster.stack.counters["rpc_corrupt_rejected"] == 1
    assert cluster.stack.counters["rpc_retries"] == 1
    assert cluster.stack.counters["rpc_timeouts"] == 0


def test_duplicate_burns_extra_frames():
    cluster = make_cluster()
    net = wrap(cluster, ScriptedRng([0.99, 0.99, 0.0, 0.99]), duplicate_rate=0.01)
    messages_before = cluster.network.stats.counters["frames"]
    send_one(cluster, nbytes=100)
    # The waiter saw its reply; the duplicate may still be in flight.
    cluster.sim.run(until=cluster.sim.now + 1.0)
    assert net.counters["duplicates"] == 1
    # Original + duplicate both hit the wire.
    assert cluster.network.stats.counters["frames"] - messages_before >= 2


def test_fixed_draw_schedule_isolates_fault_kinds():
    """Each transfer always draws 4 variates, so enabling one fault kind
    never shifts another kind's schedule (same rng seed, same decisions).
    Fault decisions happen at transfer() call time, so the schedule can
    be probed without running the simulation (whose background traffic
    would otherwise interleave extra transfers of its own)."""
    import random

    def duplicates_with(delay_rate):
        cluster = make_cluster(seed=11)
        net = wrap(
            cluster,
            random.Random(1234),
            duplicate_rate=0.3,
            delay_rate=delay_rate,
        )
        target = cluster.server_hosts[0].name
        for _ in range(40):
            net.transfer("client", target, 512)
        return net.counters["duplicates"]

    assert duplicates_with(0.0) == duplicates_with(0.9) > 0


def test_same_seed_same_fault_counters():
    """Identical plan + seed -> identical injected-fault counts."""

    def run_once():
        cluster = make_cluster(seed=7)
        net = wrap(
            cluster,
            cluster.rngs.stream("faults.network"),
            drop_rate=0.05,
            duplicate_rate=0.05,
            delay_rate=0.2,
        )
        cluster.stack.retry = RetrySpec(timeout=0.05, max_attempts=8)
        for _ in range(60):
            send_one(cluster, nbytes=2048)
        return net.counters.as_dict()

    first, second = run_once(), run_once()
    assert first == second
    assert first  # the campaign actually injected something


def test_partition_for_validates_duration():
    cluster = make_cluster()
    net = wrap(cluster, ScriptedRng([]), delay_rate=0.1)
    with pytest.raises(ValueError, match="duration"):
        drive(cluster, net.partition_for({"server-0"}, 0.0))


def test_delegates_to_inner_network():
    cluster = make_cluster()
    inner = cluster.network
    net = wrap(cluster, ScriptedRng([]), delay_rate=0.1)
    assert net.stats is inner.stats
    assert net.spec is inner.spec
