"""§4.5: busy workstations as servers."""

from repro.experiments import render_busy_servers, run_busy_servers


def test_busy_servers(benchmark, once):
    results = once(benchmark, run_busy_servers, apps=("fft", "gauss", "mvec"))
    print("\n" + render_busy_servers(results))
    for app, by_scenario in results.items():
        idle = by_scenario["idle"]["report"].etime
        # Editor load: "within 1 sec" in the paper; allow 2 s of slack.
        editor = by_scenario["editor"]["report"].etime
        assert abs(editor - idle) < 2.0, f"{app}: editor load cost too much"
        # CPU-bound load: within 7% (paper's while(1) experiment).
        cpu_bound = by_scenario["cpu-bound"]["report"].etime
        assert cpu_bound < 1.07 * idle + 0.5, f"{app}: cpu-bound load over 7%"
        # Server CPU utilisation always under 15% (§4.5).
        for scenario, entry in by_scenario.items():
            for utilization in entry["server_cpu_utilizations"]:
                assert utilization < 0.15, f"{app}/{scenario}: server CPU >= 15%"
