"""§4.3: the FFT-24MB time decomposition and 10x prediction."""

from repro.analysis import FFT_24MB_BREAKDOWN
from repro.experiments import render_breakdown, run_breakdown


def test_breakdown_fft_24mb(benchmark, once):
    results = once(benchmark, run_breakdown)
    print("\n" + render_breakdown(results))
    d = results["decomposition"]
    r = results["report"]
    paper = FFT_24MB_BREAKDOWN
    # Transfer counts within 30% of the paper's measured run.
    assert abs(r.pageouts - paper["pageouts"]) / paper["pageouts"] < 0.30
    assert abs(r.pageins - paper["pageins"]) / paper["pageins"] < 0.30
    assert abs(r.page_transfers - paper["page_transfers"]) / paper["page_transfers"] < 0.30
    # The decomposition must reconstruct etime exactly (by construction).
    total = d.utime + d.systime + d.inittime + d.pptime + d.btime
    assert abs(total - d.etime) < 1e-6
    # Headline: paging overhead under ~17% at 10x bandwidth.
    assert results["overhead_fraction_10x"] < 0.20
    assert abs(results["predicted_etime_10x"] - paper["predicted_etime_10x"]) \
        / paper["predicted_etime_10x"] < 0.15
