"""Unit tests for Resource, Store, and Container."""

import pytest

from repro.sim import Container, Resource, SimulationError, Simulator, Store


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    log = []

    def user(sim, res, tag, hold):
        yield res.acquire()
        log.append(("got", tag, sim.now))
        yield sim.timeout(hold)
        res.release()

    sim.process(user(sim, res, "a", 5))
    sim.process(user(sim, res, "b", 5))
    sim.process(user(sim, res, "c", 5))
    sim.run()
    assert log == [("got", "a", 0.0), ("got", "b", 0.0), ("got", "c", 5.0)]


def test_resource_fifo_ordering():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(sim, res, tag):
        yield res.acquire()
        order.append(tag)
        yield sim.timeout(1)
        res.release()

    for tag in "abcd":
        sim.process(user(sim, res, tag))
    sim.run()
    assert order == list("abcd")


def test_resource_release_without_acquire():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_bad_capacity():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


def test_resource_queue_length():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder(sim, res):
        yield res.acquire()
        yield sim.timeout(10)
        res.release()

    def waiter(sim, res):
        yield res.acquire()
        res.release()

    sim.process(holder(sim, res))
    sim.process(waiter(sim, res))
    sim.run(until=1.0)
    assert res.in_use == 1
    assert res.queue_length == 1


# ------------------------------------------------------------------- Store
def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)

    def producer(sim, store):
        yield store.put("x")
        yield store.put("y")

    def consumer(sim, store, out):
        out.append((yield store.get()))
        out.append((yield store.get()))

    out = []
    sim.process(producer(sim, store))
    sim.process(consumer(sim, store, out))
    sim.run()
    assert out == ["x", "y"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    out = []

    def consumer(sim, store, out):
        item = yield store.get()
        out.append((sim.now, item))

    def producer(sim, store):
        yield sim.timeout(7.0)
        yield store.put("late")

    sim.process(consumer(sim, store, out))
    sim.process(producer(sim, store))
    sim.run()
    assert out == [(7.0, "late")]


def test_store_fifo_items_and_getters():
    sim = Simulator()
    store = Store(sim)
    out = []

    def consumer(sim, store, out, tag):
        item = yield store.get()
        out.append((tag, item))

    sim.process(consumer(sim, store, out, "first"))
    sim.process(consumer(sim, store, out, "second"))

    def producer(sim, store):
        yield sim.timeout(1)
        yield store.put(1)
        yield store.put(2)

    sim.process(producer(sim, store))
    sim.run()
    assert out == [("first", 1), ("second", 2)]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer(sim, store, log):
        yield store.put("a")
        log.append(("put-a", sim.now))
        yield store.put("b")
        log.append(("put-b", sim.now))

    def consumer(sim, store):
        yield sim.timeout(5.0)
        yield store.get()

    sim.process(producer(sim, store, log))
    sim.process(consumer(sim, store))
    sim.run()
    assert log == [("put-a", 0.0), ("put-b", 5.0)]


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put("x")
    assert store.try_get() == "x"
    assert len(store) == 0


def test_store_items_snapshot():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert store.items == (1, 2)


# --------------------------------------------------------------- Container
def test_container_get_blocks():
    sim = Simulator()
    pool = Container(sim, capacity=10, init=0)
    out = []

    def taker(sim, pool, out):
        yield pool.get(4)
        out.append(sim.now)

    def giver(sim, pool):
        yield sim.timeout(3.0)
        pool.put(5)

    sim.process(taker(sim, pool, out))
    sim.process(giver(sim, pool))
    sim.run()
    assert out == [3.0]
    assert pool.level == 1


def test_container_fifo_getters():
    sim = Simulator()
    pool = Container(sim, capacity=10, init=0)
    order = []

    def taker(sim, pool, order, tag, amount):
        yield pool.get(amount)
        order.append(tag)

    sim.process(taker(sim, pool, order, "big", 6))
    sim.process(taker(sim, pool, order, "small", 1))

    def giver(sim, pool):
        yield sim.timeout(1.0)
        pool.put(2)  # not enough for "big": "small" must still wait (FIFO)
        yield sim.timeout(1.0)
        pool.put(6)

    sim.process(giver(sim, pool))
    sim.run()
    assert order == ["big", "small"]


def test_container_overflow_rejected():
    sim = Simulator()
    pool = Container(sim, capacity=5, init=5)
    with pytest.raises(SimulationError):
        pool.put(1)


def test_container_impossible_get_rejected():
    sim = Simulator()
    pool = Container(sim, capacity=5)
    with pytest.raises(SimulationError):
        pool.get(6)


def test_container_try_get():
    sim = Simulator()
    pool = Container(sim, capacity=5, init=3)
    assert pool.try_get(2)
    assert pool.level == 1
    assert not pool.try_get(2)
    assert pool.level == 1


def test_container_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Container(sim, capacity=0)
    with pytest.raises(ValueError):
        Container(sim, capacity=5, init=6)
    pool = Container(sim, capacity=5)
    with pytest.raises(ValueError):
        pool.put(-1)
    with pytest.raises(ValueError):
        pool.get(-1)
