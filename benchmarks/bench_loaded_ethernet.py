"""§4.6: remote paging over a loaded Ethernet (throughput collapse)."""

from repro.experiments import render_loaded_ethernet, run_loaded_ethernet


def test_loaded_ethernet(benchmark, once):
    results = once(benchmark, run_loaded_ethernet, loads=(0.0, 0.3, 0.6))
    print("\n" + render_loaded_ethernet(results))
    idle = results[0.0]
    light = results[0.3]
    heavy = results[0.6]
    # Degradation appears "even when the Ethernet was lightly loaded".
    assert light["etime"] > idle["etime"]
    # ... and grows with load, driven by CSMA/CD collisions.
    assert heavy["etime"] > light["etime"]
    assert heavy["collisions"] > light["collisions"] > idle["collisions"]
    # Message latency balloons under contention.
    assert heavy["mean_message_latency_ms"] > 2 * idle["mean_message_latency_ms"]
