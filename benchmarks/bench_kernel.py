"""Simulator-kernel throughput: optimized hot path vs the frozen seed.

Two complementary measurements, emitted as one JSON summary:

* **events/sec microbenchmark** — raw :class:`Simulator` throughput on
  the two hot paths every experiment exercises (the timeout chain that
  paces compute, and the relay path taken when a process yields an
  already-processed event), run A/B against the verbatim seed kernel
  preserved in :mod:`_seed_kernel` and against :mod:`_pr1_kernel`, the
  kernel frozen just before the observability layer added its tracer
  hook — proving the no-op tracer costs < 3% events/sec;
* **fig2-suite wall-clock** — the full six-application x four-policy
  grid through :class:`repro.runner.ExperimentRunner` at ``--jobs 1``
  vs ``--jobs N``, measuring what process-level parallelism buys
  end-to-end (near-linear only on a multi-core host; ``cpu_count`` is
  recorded alongside so single-core numbers read honestly).

Run as a script for the JSON trajectory record::

    PYTHONPATH=src python benchmarks/bench_kernel.py --out bench_kernel.json

or under pytest (collected with the other ``bench_*`` modules) for a
threshold-free smoke check.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for _path in (_HERE, _SRC):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import _pr1_kernel  # noqa: E402  (frozen just before the tracer hook)
import _seed_kernel  # noqa: E402  (the seed kernel, frozen at v0)

from repro.sim import core as _opt_kernel  # noqa: E402

KERNELS = {"seed": _seed_kernel, "pr1": _pr1_kernel, "optimized": _opt_kernel}

#: Largest acceptable events/sec loss of the live kernel (no-op tracer
#: installed) relative to the pre-observability PR-1 kernel.
TRACER_OVERHEAD_BUDGET = 0.03

#: Largest acceptable events/sec loss with the default NullSampler
#: fielding the fault-latency hook (telemetry off must be ~free).
SAMPLER_OVERHEAD_BUDGET = 0.03


# --------------------------------------------------------------------------
# Events/sec microbenchmarks.
# --------------------------------------------------------------------------

def bench_timeout_chain(kernel, n_events: int) -> float:
    """Events/sec for one process yielding ``n_events`` timeouts."""
    sim = kernel.Simulator()

    def chain():
        timeout = sim.timeout
        for _ in range(n_events):
            yield timeout(1.0)

    sim.process(chain(), name="chain")
    start = perf_counter()
    sim.run()
    return n_events / (perf_counter() - start)


def bench_relay_path(kernel, n_iterations: int) -> float:
    """Events/sec when every other yield hits an already-processed event.

    Each iteration schedules three events — the bare event, a zero
    timeout that lets it process, and the relay wake-up — so the rate is
    ``3 * n_iterations`` over the wall time.
    """
    sim = kernel.Simulator()
    Event = kernel.Event

    def bouncer():
        timeout = sim.timeout
        for _ in range(n_iterations):
            ev = Event(sim)
            ev.succeed(None)
            yield timeout(0.0)
            yield ev  # already PROCESSED: exercises the relay path

    sim.process(bouncer(), name="bouncer")
    start = perf_counter()
    sim.run()
    return 3 * n_iterations / (perf_counter() - start)


def measure_kernels(n_events: int = 200_000, repeats: int = 3) -> dict:
    """Best-of-``repeats`` events/sec per kernel per hot path."""
    results: dict = {}
    for path_name, bench, n in (
        ("timeout_chain", bench_timeout_chain, n_events),
        ("relay_path", bench_relay_path, n_events // 3),
    ):
        # Interleaved rounds (every kernel once per round) rather than
        # one block per kernel: frequency scaling or a noisy neighbour
        # mid-run then degrades all kernels alike instead of landing
        # entirely on whichever kernel's block it overlapped — the A/B
        # ratio stays honest even when the host drifts.
        rates = {name: 0.0 for name in KERNELS}
        for _ in range(repeats):
            for name, kernel in KERNELS.items():
                rates[name] = max(rates[name], bench(kernel, n))
        results[path_name] = {
            "events_per_sec": {k: round(v) for k, v in rates.items()},
            "speedup": round(rates["optimized"] / rates["seed"], 3),
            # < 0 means the live kernel is *faster* than pre-tracer PR 1.
            "tracer_overhead_vs_pr1": round(
                1.0 - rates["optimized"] / rates["pr1"], 4
            ),
        }
    return results


# --------------------------------------------------------------------------
# NullSampler A/B: the telemetry hook with telemetry off must be ~free.
# --------------------------------------------------------------------------

def bench_fault_rhythm(kernel, n_blocks: int, observe: bool) -> float:
    """Events/sec for a fault-shaped chain: 64 timeouts, then (when
    ``observe`` is on) one ``sampler.observe_fault`` — the rhythm the
    instrumented fault path imposes, since one serviced fault spans
    dozens of kernel events but lands exactly one sampler call."""
    sim = kernel.Simulator()
    sampler = sim.sampler if observe else None

    def chain():
        timeout = sim.timeout
        for _ in range(n_blocks):
            for _ in range(64):
                yield timeout(1.0)
            if sampler is not None:
                sampler.observe_fault(1e-3)

    sim.process(chain(), name="fault-rhythm")
    start = perf_counter()
    sim.run()
    return n_blocks * 64 / (perf_counter() - start)


def measure_sampler(n_events: int = 200_000, repeats: int = 3) -> dict:
    """Best-of A/B: default NullSampler fielding fault hooks vs none.

    Both variants run the identical nested loop, so the measured delta
    is exactly the cost of the no-op ``observe_fault`` dispatch that
    every telemetry-off run pays.
    """
    n_blocks = max(1, n_events // 64)
    rates = {"plain": 0.0, "null_sampler": 0.0}
    # Paired rounds: plain and sampled run back-to-back, and the
    # reported overhead is the *minimum* across rounds.  The true
    # dispatch cost is constant while scheduler noise on a shared host
    # almost always inflates one side of a pair, so min-of-pairs
    # converges on the real overhead where best-of-each-side can be
    # skewed by a single quiet window landing on one variant.
    overhead = None
    for _ in range(repeats):
        plain = bench_fault_rhythm(_opt_kernel, n_blocks, False)
        sampled = bench_fault_rhythm(_opt_kernel, n_blocks, True)
        rates["plain"] = max(rates["plain"], plain)
        rates["null_sampler"] = max(rates["null_sampler"], sampled)
        round_overhead = 1.0 - sampled / plain
        overhead = round_overhead if overhead is None else min(overhead, round_overhead)
    return {
        "events_per_sec": {k: round(v) for k, v in rates.items()},
        # < 0 means the sampled variant measured faster (pure noise).
        "sampler_overhead": round(overhead, 4),
    }


# --------------------------------------------------------------------------
# Fig 2 suite wall-clock: serial vs parallel runner.
# --------------------------------------------------------------------------

def bench_fig2_suite(jobs: int) -> float:
    """Wall-clock seconds for the full fig2 grid at ``jobs`` workers."""
    from repro.experiments import run_fig2
    from repro.runner import ExperimentRunner

    runner = ExperimentRunner(jobs=jobs, use_cache=False)
    start = perf_counter()
    run_fig2(runner=runner)
    return perf_counter() - start


def measure_fig2(jobs: int = 4) -> dict:
    serial = bench_fig2_suite(1)
    parallel = bench_fig2_suite(jobs)
    return {
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial, 3),
        "parallel_seconds": round(parallel, 3),
        "speedup": round(serial / parallel, 3),
    }


def run_benchmarks(n_events: int = 200_000, repeats: int = 3,
                   jobs: int = 4, skip_fig2: bool = False) -> dict:
    summary = {
        "kernel": measure_kernels(n_events, repeats),
        "sampler": measure_sampler(n_events, repeats),
    }
    if not skip_fig2:
        summary["fig2_suite"] = measure_fig2(jobs)
    return summary


# --------------------------------------------------------------------------
# pytest smoke check (no thresholds: CI boxes vary wildly).
# --------------------------------------------------------------------------

def test_kernel_throughput_smoke(benchmark, once):
    results = once(
        benchmark, measure_kernels, n_events=30_000, repeats=1
    )
    print("\n" + json.dumps(results, indent=2))
    for path in results.values():
        for rate in path["events_per_sec"].values():
            assert rate > 0


def test_noop_tracer_within_overhead_budget(benchmark, once):
    """Tracing off must be benchmark-neutral: < 3% events/sec loss.

    Best-of-5 on both kernels to shake out scheduler noise; the budget
    is the acceptance criterion for the observability layer (the no-op
    tracer is one attribute read per Simulator, no per-event work).
    """
    results = once(
        benchmark, measure_kernels, n_events=100_000, repeats=5
    )
    for path_name, path in results.items():
        overhead = path["tracer_overhead_vs_pr1"]
        print(f"\n{path_name}: tracer overhead vs pr1 = {overhead:.2%}")
        assert overhead < TRACER_OVERHEAD_BUDGET, (
            f"{path_name}: live kernel (no-op tracer) is {overhead:.2%} "
            f"slower than the PR-1 kernel (budget {TRACER_OVERHEAD_BUDGET:.0%})"
        )


def test_null_sampler_within_overhead_budget(benchmark, once):
    """Telemetry off must be benchmark-neutral: < 3% events/sec loss.

    The default NullSampler fields one ``observe_fault`` per serviced
    fault (one call per ~64 kernel events in the fault rhythm); that
    dispatch must stay under the same budget the no-op tracer meets.
    """
    results = once(benchmark, measure_sampler, n_events=100_000, repeats=5)
    overhead = results["sampler_overhead"]
    print(f"\nnull-sampler overhead = {overhead:.2%}")
    assert overhead < SAMPLER_OVERHEAD_BUDGET, (
        f"default NullSampler costs {overhead:.2%} events/sec "
        f"(budget {SAMPLER_OVERHEAD_BUDGET:.0%})"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=200_000,
                        help="timeout-chain length (default 200000)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per kernel (default 3)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="parallel worker count for the fig2 run")
    parser.add_argument("--skip-fig2", action="store_true",
                        help="microbenchmark only")
    parser.add_argument("--out", default="-", metavar="PATH",
                        help="write JSON here ('-' = stdout)")
    args = parser.parse_args(argv)

    summary = run_benchmarks(
        n_events=args.events, repeats=args.repeats,
        jobs=args.jobs, skip_fig2=args.skip_fig2,
    )
    text = json.dumps(summary, indent=2, sort_keys=True)
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
