"""FaultPlan validation and plain-data round trips."""

import json

import pytest

from repro.faults import FaultPlan


def test_unknown_event_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault event"):
        FaultPlan(events=(("meteor", 1.0),))


def test_event_needs_nonnegative_time():
    with pytest.raises(ValueError, match="time >= 0"):
        FaultPlan(events=(("crash", -1.0, 0),))
    with pytest.raises(ValueError, match="time >= 0"):
        FaultPlan(events=(("crash",),))


def test_drops_without_retry_rejected():
    with pytest.raises(ValueError, match="retry"):
        FaultPlan(drop_rate=0.1, retry=False)
    with pytest.raises(ValueError, match="retry"):
        FaultPlan(events=(("loss_burst", 1.0, 2.0, 0.5),), retry=False)
    # Faults that cannot silently swallow a message are fine without retry.
    FaultPlan(delay_rate=0.5, retry=False)


def test_kwargs_round_trip_is_identity():
    plan = FaultPlan.standard_campaign()
    assert FaultPlan.from_kwargs(plan.as_kwargs()) == plan


def test_kwargs_survive_json_round_trip():
    """The runner cache stores hook kwargs as JSON: lists come back."""
    plan = FaultPlan.standard_campaign(loss_rate=0.02)
    thawed = json.loads(json.dumps(plan.as_kwargs()))
    assert FaultPlan.from_kwargs(thawed) == plan


def test_standard_campaign_shape():
    plan = FaultPlan.standard_campaign()
    kinds = [event[0] for event in plan.events]
    assert kinds == ["crash", "corrupt_burst"]
    assert plan.drop_rate == pytest.approx(0.01)
    assert plan.watchdog_interval is not None
    assert plan.needs_network_wrapper


def test_plain_plan_needs_no_wrapper():
    assert not FaultPlan(events=(("crash", 1.0, 0),)).needs_network_wrapper
