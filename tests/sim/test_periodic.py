"""The Periodic self-rescheduling callback primitive."""

from repro.sim import NULL_SAMPLER, NullSampler, Periodic, Simulator


def test_every_fires_at_interval():
    sim = Simulator()
    ticks = []
    sim.every(1.0, ticks.append)

    def work(sim):
        yield sim.timeout(3.5)

    sim.process(work(sim))
    sim.run()
    assert ticks == [1.0, 2.0, 3.0]


def test_every_with_explicit_start():
    sim = Simulator()
    ticks = []
    sim.every(1.0, ticks.append, start=0.25)

    def work(sim):
        yield sim.timeout(2.5)

    sim.process(work(sim))
    sim.run()
    assert ticks == [0.25, 1.25, 2.25]


def test_periodic_retires_when_heap_drains():
    # A periodic callback alone must not keep the simulation alive:
    # run() has to terminate once real work is done.
    sim = Simulator()
    ticks = []
    periodic = sim.every(1.0, ticks.append)

    def work(sim):
        yield sim.timeout(2.0)

    sim.process(work(sim))
    sim.run()
    assert ticks == [1.0, 2.0]
    assert not periodic.running


def test_periodic_stop_is_idempotent():
    sim = Simulator()
    ticks = []
    periodic = sim.every(1.0, ticks.append)
    periodic.stop()
    periodic.stop()

    def work(sim):
        yield sim.timeout(3.0)

    sim.process(work(sim))
    sim.run()
    assert ticks == []


def test_periodic_interleaves_deterministically_with_events():
    # A tick scheduled at the same instant as a timeout fires in
    # schedule order (the heap's seq tiebreak), run after run.
    sim = Simulator()
    order = []
    sim.every(1.0, lambda now: order.append(("tick", now)))

    def work(sim):
        yield sim.timeout(1.0)
        order.append(("work", sim.now))
        yield sim.timeout(1.0)

    sim.process(work(sim))
    sim.run()
    assert order == [("tick", 1.0), ("work", 1.0), ("tick", 2.0)]


def test_restarting_a_retired_periodic():
    sim = Simulator()
    ticks = []
    periodic = sim.every(1.0, ticks.append)

    def work(sim):
        yield sim.timeout(1.5)

    sim.process(work(sim))
    sim.run()
    assert ticks == [1.0]
    assert not periodic.running

    # The retired tick's pop left the clock at 2.0; a fresh periodic
    # picks up from there.
    assert sim.now == 2.0
    sim.every(1.0, ticks.append)

    def more(sim):
        yield sim.timeout(2.0)

    sim.process(more(sim))
    sim.run()
    assert ticks == [1.0, 3.0, 4.0]


def test_default_sampler_is_shared_null_singleton():
    sim = Simulator()
    assert sim.sampler is NULL_SAMPLER
    assert isinstance(sim.sampler, NullSampler)
    assert not sim.sampler.enabled
    # The no-op surface the hot paths rely on: all calls are safe.
    sim.sampler.bind(sim)
    sim.sampler.observe_fault(0.001)
    sim.sampler.observe("anything", 1.0)


def test_set_sampler_binds():
    class Recorder:
        enabled = True

        def __init__(self):
            self.bound = None

        def bind(self, sim):
            self.bound = sim

    sim = Simulator()
    sampler = Recorder()
    sim.set_sampler(sampler)
    assert sim.sampler is sampler
    assert sampler.bound is sim
