"""MIRRORING: two copies of every page (§2.2).

"When the client swaps out a page, the page is sent to two different
servers. ... the crash recovery overhead is minimal.  However, the
runtime overhead is rather high, since each pageout requires two page
transfers.  To make matters worse, mirroring wastes half of the remote
memory used."
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...errors import PageNotFound, RecoveryError, ServerCrashed, ServerUnavailable
from ...sim import NULL_SPAN
from ..server import MemoryServer
from .base import ReliabilityPolicy

__all__ = ["Mirroring"]


class Mirroring(ReliabilityPolicy):
    """Primary + mirror copy on two distinct servers."""

    name = "mirroring"
    memory_overhead_factor = 2.0

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if len(self.servers) < 2:
            raise ValueError("mirroring needs at least two servers")
        self._placement: Dict[int, Tuple[MemoryServer, MemoryServer]] = {}
        self._next = 0

    def _place(self, page_id: int) -> Tuple[MemoryServer, MemoryServer]:
        pair = self._placement.get(page_id)
        if pair is not None:
            return pair
        candidates = [s for s in self._live_servers() if s.free_pages > 0]
        if len(candidates) < 2:
            raise ServerUnavailable("any", reason="fewer than two usable servers")
        primary = candidates[self._next % len(candidates)]
        mirror = candidates[(self._next + 1) % len(candidates)]
        self._next += 1
        pair = (primary, mirror)
        self._placement[page_id] = pair
        return pair

    def pageout(self, page_id: int, contents: Optional[bytes], span=NULL_SPAN):
        primary, mirror = self._place(page_id)
        # Two page transfers per pageout — mirroring's runtime cost.  The
        # mirror copy books under the "mirror" span label so the latency
        # decomposition isolates the redundancy traffic.
        for server, label in ((primary, "transfer"), (mirror, "mirror")):
            self._require_live(server)
            yield from self._send_page(server, page_id, contents, span=span, label=label)
        self.counters.add("pageouts")

    def pagein(self, page_id: int, span=NULL_SPAN):
        pair = self._placement.get(page_id)
        if pair is None:
            raise PageNotFound(page_id, where=self.name)
        # Surface a dead copy so the client repairs redundancy now — a
        # silently degraded mirror is one crash away from data loss.
        for server in pair:
            if not server.is_alive:
                self._require_live(server)
        for server in pair:
            if server.holds(page_id):
                contents = yield from self._fetch_page(server, page_id, span=span)
                self.counters.add("pageins")
                return contents
        raise PageNotFound(page_id, where=self.name)

    def holds(self, page_id: int) -> bool:
        pair = self._placement.get(page_id)
        if pair is None:
            return False
        return any(s.is_alive and s.holds(page_id) for s in pair)

    def release(self, page_id: int) -> None:
        pair = self._placement.pop(page_id, None)
        if pair is not None:
            for server in pair:
                server.free([page_id])

    def scrub_page(self, page_id: int, verify, span=NULL_SPAN):
        """Repair at-rest bit-rot from the sibling copy.

        Fetches both copies, keeps the one that passes ``verify``, and
        re-sends the clean bytes over any copy that failed — both full
        page transfers, so scrubbing carries its honest network cost.
        """
        pair = self._placement.get(page_id)
        if pair is None:
            return None
        clean = None
        rotted = []
        for server in pair:
            if not (server.is_alive and server.holds(page_id)):
                continue
            candidate = yield from self._fetch_page(
                server, page_id, span=span, label="scrub"
            )
            if clean is None and candidate is not None and verify(candidate):
                clean = candidate
            elif candidate is not None:
                rotted.append(server)
        if clean is None:
            return None
        for server in rotted:
            yield from self._send_page(
                server, page_id, clean, span=span, label="scrub"
            )
            self.counters.add("scrub_repairs")
        return clean

    def recover(self, crashed: MemoryServer):
        """Re-replicate every page whose redundancy the crash destroyed.

        Minimal-cost recovery (§2.2): surviving copies already exist, so
        the application never stalls on lost data; this pass restores
        two-copy redundancy by copying each affected page from its
        survivor to a replacement server.
        """
        affected = [
            (page_id, pair)
            for page_id, pair in self._placement.items()
            if crashed in pair
        ]
        replacements = [s for s in self._live_servers() if s is not crashed]
        if not replacements:
            raise RecoveryError("no surviving server to re-mirror onto")
        restored = 0
        for page_id, pair in affected:
            survivor = pair[0] if pair[1] is crashed else pair[1]
            if not survivor.is_alive:
                # A dead survivor is a *second* crash: surface it so the
                # client's cascade handler retires this victim and
                # recovers the new one — a genuine double failure then
                # reports loudly there instead of being diagnosed here.
                raise ServerCrashed(survivor.name)
            contents = yield from self._fetch_page(survivor, page_id)
            self._recovery_verify(page_id, contents)
            target = max(
                (s for s in replacements if s is not survivor and s.free_pages > 0),
                key=lambda s: s.free_pages,
                default=None,
            )
            if target is None:
                raise RecoveryError("no replacement server with free memory")
            yield from self._send_page(target, page_id, contents)
            self._placement[page_id] = (survivor, target)
            restored += 1
        self.counters.add("recovered_pages", restored)
        return restored
