"""Reference-trace compilation: precomputed fault schedules.

The paper's pager only ever sees the *fault stream* (§4.3: thousands of
pageins/pageouts for an FFT that touches millions of pages), yet the
interpreted :class:`~repro.vm.machine.Machine` pays per-reference Python
for every resident hit.  This package pre-simulates the replacement
policy over a workload's reference stream in one tight pass and emits a
compact :class:`FaultSchedule` the machine replays in O(faults) —
bit-identically, because the schedule records the exact CPU-flush
amounts and fault decisions the interpreted path would make, so the
simulation-event sequence is literally unchanged (see DESIGN.md §12).
"""

from .schedule import SCHEDULE_FORMAT, FaultSchedule
from .compiler import compile_trace
from .plan import (
    compile_enabled,
    plan_replay,
    schedule_cache_enabled,
    set_compile_enabled,
)

__all__ = [
    "SCHEDULE_FORMAT",
    "FaultSchedule",
    "compile_trace",
    "plan_replay",
    "compile_enabled",
    "schedule_cache_enabled",
    "set_compile_enabled",
]
