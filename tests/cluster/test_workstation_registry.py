"""Unit tests for Workstation, ServerRegistry, and the load models."""

import pytest

from repro.cluster import (
    CpuBoundLoop,
    EditorSession,
    MemorySurge,
    ServerRegistry,
    Workstation,
)
from repro.config import DEC_ALPHA_3000_300, MachineSpec
from repro.sim import Simulator
from repro.units import megabytes


def make_ws(sim, ram_mb=32, reserve=0):
    spec = MachineSpec(
        name="ws", ram_bytes=megabytes(ram_mb), kernel_resident_bytes=megabytes(8)
    )
    return Workstation(sim, "ws-0", spec, reserve_pages=reserve)


# ------------------------------------------------------------- Workstation
def test_free_pages_accounting():
    sim = Simulator()
    ws = make_ws(sim, ram_mb=32, reserve=16)
    total = ws.total_pages
    native = ws.native_pages
    assert ws.free_pages == total - native - 16


def test_grant_and_revoke():
    sim = Simulator()
    ws = make_ws(sim)
    granted = ws.grant(100)
    assert granted == 100
    assert ws.granted_pages == 100
    ws.revoke(40)
    assert ws.granted_pages == 60


def test_grant_capped_at_free():
    sim = Simulator()
    ws = make_ws(sim)
    granted = ws.grant(10**9)
    assert granted == ws.granted_pages
    assert ws.free_pages == 0


def test_revoke_too_much_rejected():
    sim = Simulator()
    ws = make_ws(sim)
    ws.grant(10)
    with pytest.raises(ValueError):
        ws.revoke(11)


def test_pressure_callback_fires_on_squeeze():
    sim = Simulator()
    ws = make_ws(sim)
    ws.grant(ws.free_pages)  # take everything
    deficits = []
    ws.pressure_callback = deficits.append
    ws.set_native_pages(ws.native_pages + 50)
    assert deficits == [50]


def test_no_pressure_when_room():
    sim = Simulator()
    ws = make_ws(sim)
    deficits = []
    ws.pressure_callback = deficits.append
    ws.set_native_pages(ws.native_pages + 10)
    assert deficits == []


def test_cpu_time_scales_with_load():
    sim = Simulator()
    ws = make_ws(sim)

    def burn(ws):
        yield from ws.cpu_time(1.0)
        return sim.now

    assert sim.run_until_complete(sim.process(burn(ws))) == pytest.approx(1.0)
    ws.add_cpu_load(0.5)
    sim2 = Simulator()
    ws2 = make_ws(sim2)
    ws2.add_cpu_load(0.5)

    def burn2(ws):
        yield from ws.cpu_time(1.0)
        return sim2.now

    assert sim2.run_until_complete(sim2.process(burn2(ws2))) == pytest.approx(1.5)


def test_cpu_load_validation():
    sim = Simulator()
    ws = make_ws(sim)
    with pytest.raises(ValueError):
        ws.add_cpu_load(-1)
    with pytest.raises(ValueError):
        ws.remove_cpu_load(0.5)


# ----------------------------------------------------------------- Registry
class FakeServer:
    def __init__(self, name, free_pages, alive=True, advising=False):
        self.name = name
        self.free_pages = free_pages
        self.is_alive = alive
        self.advising = advising


def test_registry_best_prefers_most_free():
    reg = ServerRegistry()
    reg.register(FakeServer("a", 10))
    reg.register(FakeServer("b", 50))
    reg.register(FakeServer("c", 30))
    assert reg.best().name == "b"


def test_registry_skips_dead_and_advising():
    reg = ServerRegistry()
    reg.register(FakeServer("dead", 100, alive=False))
    reg.register(FakeServer("busy", 100, advising=True))
    reg.register(FakeServer("ok", 10))
    assert reg.best().name == "ok"


def test_registry_exclude_and_min_pages():
    reg = ServerRegistry()
    reg.register(FakeServer("a", 50))
    reg.register(FakeServer("b", 20))
    assert reg.best(exclude={"a"}).name == "b"
    assert reg.best(min_pages=30, exclude={"a"}) is None


def test_registry_pick_distinct():
    reg = ServerRegistry()
    for name, free in (("a", 10), ("b", 20), ("c", 30)):
        reg.register(FakeServer(name, free))
    picked = reg.pick_distinct(2)
    assert [s.name for s in picked] == ["c", "b"]
    with pytest.raises(LookupError):
        reg.pick_distinct(4)


def test_registry_reregister_replaces():
    reg = ServerRegistry()
    reg.register(FakeServer("a", 10))
    reg.register(FakeServer("a", 99))
    assert len(reg) == 1
    assert reg.get("a").free_pages == 99


def test_registry_requires_interface():
    reg = ServerRegistry()
    with pytest.raises(TypeError):
        reg.register(object())


def test_registry_unregister():
    reg = ServerRegistry()
    reg.register(FakeServer("a", 10))
    reg.unregister("a")
    assert reg.get("a") is None


# -------------------------------------------------------------- load models
def test_editor_session_occupies_memory():
    sim = Simulator()
    ws = make_ws(sim, ram_mb=64)
    baseline = ws.native_pages
    EditorSession(ws)
    sim.run(until=60.0)
    assert ws.native_pages > baseline


def test_editor_session_stop_restores():
    sim = Simulator()
    ws = make_ws(sim, ram_mb=64)
    baseline = ws.native_pages
    editor = EditorSession(ws)
    sim.run(until=10.0)
    editor.stop()
    sim.run(until=11.0)
    assert ws.native_pages == baseline


def test_cpu_bound_loop_adds_and_removes_load():
    sim = Simulator()
    ws = make_ws(sim)
    hog = CpuBoundLoop(ws, slowdown_factor=0.5)
    assert ws.cpu_load == 0.5
    hog.stop()
    assert ws.cpu_load == 0.0
    hog.stop()  # idempotent
    assert ws.cpu_load == 0.0


def test_memory_surge_applies_and_reverts():
    sim = Simulator()
    ws = make_ws(sim, ram_mb=64)
    baseline = ws.native_pages
    MemorySurge(ws, surge_mb=8, at_time=5.0, duration=10.0)
    sim.run(until=6.0)
    assert ws.native_pages > baseline
    sim.run(until=20.0)
    assert ws.native_pages == baseline


def test_memory_surge_in_past_rejected():
    sim = Simulator()
    ws = make_ws(sim)
    sim.run(until=10.0)
    with pytest.raises(ValueError):
        MemorySurge(ws, surge_mb=1, at_time=5.0)
