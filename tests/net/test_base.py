"""Message/NetworkStats unit tests."""

import pytest

from repro.net import Message, NetworkStats
from repro.sim import Simulator


def test_message_validation():
    with pytest.raises(ValueError):
        Message(src="a", dst="a", nbytes=10)
    with pytest.raises(ValueError):
        Message(src="a", dst="b", nbytes=0)


def test_message_ids_unique():
    a = Message(src="a", dst="b", nbytes=1)
    b = Message(src="a", dst="b", nbytes=1)
    assert a.msg_id != b.msg_id


def test_stats_accumulate_latency():
    sim = Simulator()
    stats = NetworkStats(sim)
    message = Message(src="a", dst="b", nbytes=100, enqueued_at=0.0)
    sim.run(until=0.5)
    stats.delivered(message)
    assert stats.counters["messages"] == 1
    assert stats.counters["bytes"] == 100
    assert stats.message_latency.mean == pytest.approx(0.5)


def test_utilization_zero_when_idle():
    sim = Simulator()
    stats = NetworkStats(sim)
    sim.run(until=10.0)
    assert stats.utilization() == 0.0
