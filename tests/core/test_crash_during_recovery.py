"""Composed faults: a second server dies while recovery is in flight.

A single-redundancy policy cannot always survive two concurrent holes,
so the contract under test is *fail-loud*, not zero-loss: every page
either comes back byte-identical to what was paged out, or its pagein
raises — wrong bytes are never silently returned.  Policies whose
redundancy does not live on the peer servers (write-through's disk
copy) must additionally lose nothing.
"""

import pytest

from repro.core import build_cluster
from repro.errors import ReproError
from repro.faults import ChaosController, FaultPlan, check_page_integrity
from repro.config import MachineSpec
from repro.vm import page_bytes
from repro.workloads import SequentialScan

PAGE = 8192

SMALL = MachineSpec(
    name="test-small",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)

ALL_POLICIES = [
    "no-reliability",
    "mirroring",
    "parity",
    "parity-logging",
    "write-through",
]


def cluster_for(policy, **kwargs):
    defaults = dict(n_servers=4, content_mode=True, server_capacity_pages=256)
    if policy == "parity-logging":
        defaults["overflow_fraction"] = 0.25
    defaults.update(kwargs)
    return build_cluster(policy=policy, **defaults)


def drive(cluster, gen):
    def body(gen):
        result = yield from gen
        return result

    return cluster.sim.run_until_complete(cluster.sim.process(body(gen)))


def pageout_all(cluster, pages):
    for page_id, version in pages.items():
        drive(
            cluster,
            cluster.pager.pageout(page_id, page_bytes(page_id, version, PAGE)),
        )


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_second_crash_mid_recovery_is_loud_never_silent(policy):
    cluster = cluster_for(policy)
    pages = {p: 1 for p in range(48)}
    pageout_all(cluster, pages)
    first, second = cluster.servers[0], cluster.servers[1]

    def kill_second(crashed):
        if crashed is first and second.is_alive:
            second.crash()

    cluster.pager.recovery_watchers.append(kill_second)
    first.crash()

    lost = []
    for page_id, version in pages.items():
        try:
            got = drive(cluster, cluster.pager.pagein(page_id))
        except ReproError:
            lost.append(page_id)
            continue
        assert got == page_bytes(page_id, version, PAGE), f"page {page_id}"
    # The watcher fired the moment recovery started.
    assert not second.is_alive
    if policy == "write-through":
        # Redundancy lives on the local disk: two dead peers cost nothing.
        assert lost == []
    if policy == "no-reliability":
        assert lost  # both victims' pages are simply gone


def test_cascade_is_counted_and_traced():
    """When recovery itself trips over the second corpse, the pager
    retires the first victim and restarts recovery for the second."""
    found = []
    for seed in range(6):
        cluster = cluster_for("mirroring", seed=seed)
        pages = {p: 1 for p in range(48)}
        pageout_all(cluster, pages)
        first, second = cluster.servers[0], cluster.servers[1]
        cluster.pager.recovery_watchers.append(
            lambda crashed, f=first, s=second: s.crash()
            if crashed is f and s.is_alive
            else None
        )
        first.crash()
        for page_id in pages:
            try:
                drive(cluster, cluster.pager.pagein(page_id))
            except ReproError:
                pass
        if cluster.pager.counters["cascaded_recoveries"] >= 1:
            found.append(seed)
            break
    assert found, "no seed produced a recovery-time cascade"


def test_crash_during_recovery_event_composes_in_a_campaign():
    """The Hydra event arms a watcher: the second victim dies exactly
    when recovery of the first begins — and no page is ever silently
    corrupted, whatever the loss outcome."""
    cluster = build_cluster(
        policy="mirroring",
        machine_spec=SMALL,
        n_servers=4,
        content_mode=True,
        seed=3,
        server_capacity_pages=600,
    )
    plan = FaultPlan(events=(("crash_during_recovery", 5.0, 0, 1),))
    controller = ChaosController(cluster, plan)
    try:
        cluster.run(SequentialScan(n_pages=400, passes=3, write=True))
    except ReproError:
        pass
    kinds = [kind for _, kind, _ in controller.fault_log]
    assert kinds.count("crash") == 2
    hydra = [d for _, k, d in controller.fault_log if d.get("during")]
    assert hydra and hydra[0]["during"] == "recovery"
    report = check_page_integrity(cluster)
    assert report.corrupted == []  # loss may happen; silent rot may not


def test_crash_during_recovery_rejects_unwatchable_pager():
    cluster = cluster_for("mirroring")
    del cluster.pager.recovery_watchers
    controller = ChaosController(cluster, FaultPlan())
    with pytest.raises(ValueError, match="recovery_watchers"):
        drive(
            cluster,
            controller._crash_during_recovery(
                cluster.servers[0], cluster.servers[1]
            ),
        )
