"""Workstation model: a host that can donate memory and CPU to servers.

The paper's servers are user-level processes on other people's
workstations (§2.1, §4.5), so a server's resources are whatever its host
can spare:

* **Memory** — the host's frames minus native (owner) demand.  Native
  demand varies (editors, simulations); when it rises, granted donations
  are *revoked* and the server must shed pages and advise its clients.
* **CPU** — server request handling is charged host CPU time, inflated by
  whatever CPU-bound native load is running (the §4.5 "while(1)"
  experiment).  Interactive Unix scheduling favours the I/O-bound server
  process, so a CPU hog inflates service time only modestly.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..config import MachineSpec
from ..sim import Simulator

__all__ = ["Workstation"]


class Workstation:
    """A cluster host with native memory demand and donated memory."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        spec: MachineSpec,
        reserve_pages: int = 64,
    ):
        if reserve_pages < 0:
            raise ValueError(f"negative reserve: {reserve_pages}")
        self.sim = sim
        self.name = name
        self.spec = spec
        #: Frames the host never donates (burst headroom for the owner).
        self.reserve_pages = reserve_pages
        self._native_pages = spec.kernel_resident_bytes // spec.page_size
        self._granted_pages = 0
        #: Extra service-time factor from CPU-bound native load (0 = idle).
        self.cpu_load = 0.0
        #: Called with the frame deficit when native demand squeezes grants.
        self.pressure_callback: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------- memory
    @property
    def total_pages(self) -> int:
        return self.spec.total_frames

    @property
    def native_pages(self) -> int:
        """Frames the owner's own processes currently occupy."""
        return self._native_pages

    @property
    def granted_pages(self) -> int:
        """Frames currently granted to memory servers."""
        return self._granted_pages

    @property
    def free_pages(self) -> int:
        """Frames available to donate right now."""
        return max(
            0,
            self.total_pages - self._native_pages - self._granted_pages - self.reserve_pages,
        )

    def grant(self, n_pages: int) -> int:
        """Donate up to ``n_pages`` frames; returns how many were granted."""
        if n_pages < 0:
            raise ValueError(f"negative grant request: {n_pages}")
        granted = min(n_pages, self.free_pages)
        self._granted_pages += granted
        return granted

    def revoke(self, n_pages: int) -> None:
        """Return ``n_pages`` previously granted frames."""
        if n_pages < 0 or n_pages > self._granted_pages:
            raise ValueError(
                f"cannot revoke {n_pages} of {self._granted_pages} granted frames"
            )
        self._granted_pages -= n_pages

    def set_native_pages(self, n_pages: int) -> None:
        """Owner demand changed; squeeze donations if necessary.

        If native demand plus grants exceed the machine, the deficit is
        reported through ``pressure_callback`` — the server reacts by
        shedding pages to its local disk and advising clients (§2.1).
        """
        if n_pages < 0 or n_pages > self.total_pages:
            raise ValueError(f"native pages {n_pages} outside [0, {self.total_pages}]")
        self._native_pages = n_pages
        overflow = (
            self._native_pages + self._granted_pages + self.reserve_pages
            - self.total_pages
        )
        if overflow > 0 and self.pressure_callback is not None:
            self.pressure_callback(overflow)

    # ---------------------------------------------------------------- CPU
    def cpu_time(self, seconds: float):
        """Generator: occupy the host CPU for ``seconds`` of work.

        Native CPU-bound load stretches the wall time: the server is
        I/O-bound and scheduled promptly, but loses some cycles.
        """
        if seconds < 0:
            raise ValueError(f"negative CPU time: {seconds}")
        yield self.sim.timeout(seconds * (1.0 + self.cpu_load))

    def add_cpu_load(self, factor: float) -> None:
        """A CPU-bound native process started (e.g. the §4.5 while(1))."""
        if factor < 0:
            raise ValueError(f"negative load factor: {factor}")
        self.cpu_load += factor

    def remove_cpu_load(self, factor: float) -> None:
        """A CPU-bound native process stopped."""
        if factor < 0 or factor > self.cpu_load + 1e-12:
            raise ValueError(f"cannot remove load {factor} (current {self.cpu_load})")
        self.cpu_load = max(0.0, self.cpu_load - factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Workstation {self.name!r} native={self._native_pages}p "
            f"granted={self._granted_pages}p free={self.free_pages}p>"
        )
