"""Unit tests for RNG streams and measurement helpers."""

import math

import pytest

from repro.sim import Counter, RngRegistry, Tally, TimeWeighted, UtilizationTracker


# ---------------------------------------------------------------------- RNG
def test_streams_are_deterministic_across_registries():
    a = RngRegistry(seed=7).stream("net.backoff")
    b = RngRegistry(seed=7).stream("net.backoff")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_streams_differ_by_name():
    rngs = RngRegistry(seed=7)
    a = [rngs.stream("a").random() for _ in range(5)]
    b = [rngs.stream("b").random() for _ in range(5)]
    assert a != b


def test_streams_differ_by_seed():
    a = [RngRegistry(seed=1).stream("x").random() for _ in range(5)]
    b = [RngRegistry(seed=2).stream("x").random() for _ in range(5)]
    assert a != b


def test_stream_identity_cached():
    rngs = RngRegistry(seed=0)
    assert rngs.stream("x") is rngs.stream("x")


def test_fork_is_independent():
    root = RngRegistry(seed=3)
    fork = root.fork("child")
    a = [root.stream("x").random() for _ in range(5)]
    b = [fork.stream("x").random() for _ in range(5)]
    assert a != b


def test_fork_deterministic():
    a = RngRegistry(seed=3).fork("child").stream("x").random()
    b = RngRegistry(seed=3).fork("child").stream("x").random()
    assert a == b


# ------------------------------------------------------------------ Counter
def test_counter_accumulates():
    c = Counter()
    c.add("pageins")
    c.add("pageins", 4)
    assert c["pageins"] == 5
    assert c["missing"] == 0
    assert c.as_dict() == {"pageins": 5}


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter().add("x", -1)


# -------------------------------------------------------------------- Tally
def test_tally_statistics():
    t = Tally()
    for v in [2.0, 4.0, 6.0]:
        t.observe(v)
    assert t.count == 3
    assert t.mean == pytest.approx(4.0)
    assert t.total == pytest.approx(12.0)
    assert t.minimum == 2.0
    assert t.maximum == 6.0
    assert t.variance == pytest.approx(8.0 / 3.0)


def test_tally_empty_is_nan():
    t = Tally()
    assert math.isnan(t.mean)
    assert math.isnan(t.variance)


def test_tally_samples_and_percentile():
    t = Tally(keep_samples=True)
    for v in range(1, 101):
        t.observe(float(v))
    assert t.percentile(50) == 50.0
    assert t.percentile(100) == 100.0
    assert t.percentile(1) == 1.0


def test_tally_samples_disabled():
    t = Tally()
    t.observe(1.0)
    with pytest.raises(ValueError):
        _ = t.samples


def test_percentile_range_check():
    t = Tally(keep_samples=True)
    with pytest.raises(ValueError):
        t.percentile(101)


# ------------------------------------------------------------- TimeWeighted
def test_time_weighted_average():
    tw = TimeWeighted(now=0.0, level=0.0)
    tw.record(10.0, 4.0)  # level 0 for [0,10)
    tw.record(20.0, 0.0)  # level 4 for [10,20)
    assert tw.average(20.0) == pytest.approx(2.0)


def test_time_weighted_extends_current_level():
    tw = TimeWeighted(now=0.0, level=2.0)
    assert tw.average(10.0) == pytest.approx(2.0)


def test_time_weighted_rejects_backwards_time():
    tw = TimeWeighted(now=5.0)
    with pytest.raises(ValueError):
        tw.record(4.0, 1.0)


# ------------------------------------------------------- UtilizationTracker
def test_utilization_fraction():
    u = UtilizationTracker(now=0.0)
    u.busy(2.0)
    u.idle(6.0)
    assert u.utilization(8.0) == pytest.approx(0.5)


def test_utilization_nested_busy():
    u = UtilizationTracker(now=0.0)
    u.busy(0.0)
    u.busy(1.0)  # nested: still one busy interval
    u.idle(2.0)
    u.idle(4.0)
    assert u.utilization(4.0) == pytest.approx(1.0)


def test_utilization_unmatched_idle():
    u = UtilizationTracker()
    with pytest.raises(ValueError):
        u.idle(1.0)
