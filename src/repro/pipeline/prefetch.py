"""Leap-style adaptive prefetcher (Maruf & Chowdhury, ATC'20).

Turns predicted remote pageins into local hits.  The detector keeps the
last ``history`` fault-to-fault deltas and elects a **majority trend**
with one Boyer-Moore pass — sequential scans elect +1, strided sweeps
elect their stride, and random access elects nothing (so a uniform
random workload prefetches ~nothing: no false wins, the property the
acceptance criteria pin).  On a detected trend the prefetcher pulls the
next ``depth`` pages along it into a bounded FIFO cache via the
reliability policy's normal pagein path — every prefetch is a real
(faultable, retryable) transfer, observed by the chaos harness like any
other.

Correctness guards:

* Prefetched bytes are verified against the pager's end-to-end checksum
  ledger at arrival; mismatches are dropped (the demand path scrubs).
* Any pageout (queued, coalesced, or synchronous) invalidates the page:
  cache entry dropped, in-flight fetch marked stale and discarded on
  arrival.  The cache can therefore never serve a superseded version.
* Fetch failures (crash, timeout, no copy) abandon the prefetch
  silently; recovery stays the demand path's job.
* ``quiesce`` (the end-of-run drain) waits out in-flight fetches, then
  empties and disables the cache, so post-run integrity replay reads the
  servers, not the cache.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Dict, Optional, Set

from ..errors import ReproError
from ..log import get_logger
from ..sim import Counter
from ..vm.page import page_checksum

__all__ = ["AdaptivePrefetcher", "majority_trend"]

log = get_logger(__name__)

#: Faults observed before the detector is allowed to elect a trend.
_WARMUP = 4


def majority_trend(deltas) -> Optional[int]:
    """The strict-majority element of ``deltas``, if any (else None).

    Boyer-Moore vote + one verification pass: O(n), no allocation beyond
    the iterator.  A zero delta (repeated faults on one page) never forms
    a trend.
    """
    candidate, count = None, 0
    for delta in deltas:
        if count == 0:
            candidate, count = delta, 1
        elif delta == candidate:
            count += 1
        else:
            count -= 1
    if candidate is None or candidate == 0:
        return None
    wins = sum(1 for delta in deltas if delta == candidate)
    return candidate if 2 * wins > len(deltas) else None


class AdaptivePrefetcher:
    """Majority-trend detector + bounded prefetch cache."""

    def __init__(self, pager, spec, counters: Counter):
        self.pager = pager
        self.sim = pager.sim
        self.spec = spec
        self.counters = counters
        self._deltas = deque(maxlen=spec.history)
        self._last_fault: Optional[int] = None
        self._cache: "OrderedDict[int, Optional[bytes]]" = OrderedDict()
        self._inflight: Dict[int, object] = {}  # page_id -> fetch Process
        self._stale: Set[int] = set()
        self._quiesced = False

    # ------------------------------------------------------------ detection
    def observe_fault(self, page_id: int) -> None:
        """Feed one demand fault to the detector; maybe start prefetches."""
        if self._quiesced:
            return
        last = self._last_fault
        self._last_fault = page_id
        if last is not None:
            self._deltas.append(page_id - last)
        if len(self._deltas) < _WARMUP:
            return
        trend = majority_trend(self._deltas)
        if trend is None:
            return
        self.counters.add("prefetch_trend_windows")
        for step in range(1, self.spec.prefetch + 1):
            target = page_id + step * trend
            if not self._eligible(target):
                continue
            self.counters.add("prefetch_issued")
            self._inflight[target] = self.sim.process(
                self._fetch(target), name=f"prefetch-{target}"
            )

    def _eligible(self, target: int) -> bool:
        if target < 0 or target in self._cache or target in self._inflight:
            return False
        pager = self.pager
        if target in pager._on_disk:
            return False  # local-disk fallback pages are cheap already
        queue = getattr(pager, "_pageout_queue", None)
        if queue is not None and queue.lookup(target) is not None:
            return False  # queued write-back: already a local hit
        return pager.policy.holds(target)

    # -------------------------------------------------------------- fetches
    def _fetch(self, page_id: int):
        span = self.sim.tracer.span("prefetch", page_id)
        try:
            try:
                contents = yield from self.pager.policy.pagein(page_id, span=span)
            except ReproError as exc:
                # A prefetch is speculative: never recover, never retry —
                # the demand path owns failure handling.
                self.counters.add("prefetch_aborted")
                span.end("aborted", reason=type(exc).__name__)
                return
            if page_id in self._stale or self._quiesced:
                self.counters.add("prefetch_discarded_stale")
                span.end("stale")
                return
            expected = self.pager.checksums.get(page_id)
            if (
                contents is not None
                and expected is not None
                and page_checksum(contents) != expected
            ):
                self.counters.add("prefetch_discarded_corrupt")
                span.end("corrupt-discarded")
                return
            self._cache[page_id] = contents
            self.counters.add("prefetch_completed")
            while len(self._cache) > self.spec.cache_pages:
                self._cache.popitem(last=False)
                self.counters.add("prefetch_evicted")
            span.end("ok")
        finally:
            self._stale.discard(page_id)
            self._inflight.pop(page_id, None)
            span.end("error")  # no-op unless an exception escaped

    # ----------------------------------------------------------- client API
    def take(self, page_id: int):
        """Consume a completed prefetch: ``(True, contents)`` or miss."""
        if page_id in self._cache:
            return True, self._cache.pop(page_id)
        return False, None

    def inflight_event(self, page_id: int):
        """The fetch Process to wait on, when a prefetch is mid-flight."""
        return self._inflight.get(page_id)

    def invalidate(self, page_id: int) -> None:
        """A newer version exists (pageout/release): drop every trace."""
        if self._cache.pop(page_id, (None,)) != (None,):
            self.counters.add("prefetch_invalidated")
        if page_id in self._inflight:
            self._stale.add(page_id)

    def quiesce(self):
        """Generator: settle in-flight fetches, then disable the cache."""
        self._quiesced = True
        while self._inflight:
            _, process = next(iter(self._inflight.items()))
            yield process
        self._cache.clear()
        self._stale.clear()
