"""§5's network-load threshold: fall back to the disk under congestion.

"Such a situation could be handled by the RMP by measuring the time it
takes to satisfy a request and using a threshold to determine whether it
should continue to use the network to route pageout requests or it would
be better to switch to the local disk."

This experiment runs a paging workload over a badly congested Ethernet
with and without the threshold; with it, the pager reroutes pageouts to
the local disk and completion time improves.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.report import format_table
from ..core.builder import Cluster
from ..net.traffic import attach_background_load
from ..units import milliseconds
from ..workloads import Mvec
from .harness import run_policy

__all__ = ["run_adaptive", "render_adaptive"]


def run_adaptive(
    background_load: float = 0.8,
    threshold_ms: float = 25.0,
    workload_factory=Mvec,
) -> Dict[str, object]:
    """Compare fixed-network vs threshold-adaptive pagers."""
    def hook(cluster: Cluster) -> None:
        attach_background_load(cluster.network, total_load=background_load, n_sources=4)

    results: Dict[str, object] = {}
    for label, threshold in (("fixed-network", None), ("adaptive", milliseconds(threshold_ms))):
        captured = {}

        def capture_hook(cluster: Cluster) -> None:
            hook(cluster)
            captured["pager"] = cluster.pager

        report = run_policy(
            workload_factory,
            "no-reliability",
            cluster_hook=capture_hook,
            network_threshold=threshold,
        )
        pager = captured["pager"]
        results[label] = {
            "etime": report.etime,
            "disk_routed": pager.counters["disk_fallback_pageouts"],
            "network_pageouts": pager.policy.counters["pageouts"],
        }
    results["improvement"] = (
        1.0 - results["adaptive"]["etime"] / results["fixed-network"]["etime"]
    )
    return results


def render_adaptive(results: Dict[str, object]) -> str:
    """Fixed-vs-adaptive pager table."""
    rows = []
    for label in ("fixed-network", "adaptive"):
        r = results[label]
        rows.append(
            [label, f"{r['etime']:.1f}", r["network_pageouts"], r["disk_routed"]]
        )
    table = format_table(
        ["pager", "etime (s)", "network pageouts", "disk-routed pageouts"],
        rows,
        title="§5: network-load threshold on a congested Ethernet (MVEC)",
    )
    return table + f"\nadaptive improvement: {results['improvement']:.1%}"
