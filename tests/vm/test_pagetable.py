"""Dedicated page-table tests."""

from repro.vm import PageTable, PageTableEntry


def test_entry_created_lazily_with_clear_state():
    table = PageTable()
    assert table.get(5) is None
    pte = table.entry(5)
    assert not pte.resident and not pte.dirty and not pte.referenced
    assert not pte.on_backing_store
    assert table.get(5) is pte


def test_entry_is_stable():
    table = PageTable()
    assert table.entry(1) is table.entry(1)


def test_resident_tracking():
    table = PageTable()
    for page_id in range(6):
        pte = table.entry(page_id)
        pte.resident = page_id % 2 == 0
    assert table.resident_count == 3
    assert sorted(table.resident_pages()) == [0, 2, 4]


def test_len_and_contains():
    table = PageTable()
    table.entry(3)
    assert len(table) == 1
    assert 3 in table
    assert 4 not in table


def test_repr_flags():
    pte = PageTableEntry(7)
    pte.resident = True
    pte.dirty = True
    text = repr(pte)
    assert "R" in text and "D" in text
