"""Analytic-model validation against first principles and the simulator."""

import pytest

from repro.analysis.model import AnalyticModel, disk_page_time, ethernet_page_time
from repro.config import DEC_ALPHA_3000_300, DEC_RZ55


def test_ethernet_page_time_matches_paper_scale():
    """~9 ms per 8 KB page including the 1.6 ms protocol share (§4.4)."""
    t = ethernet_page_time()
    assert 0.008 < t < 0.011
    assert ethernet_page_time(with_request=True) > t


def test_disk_page_time_components():
    streamed = disk_page_time(sequential=True)
    random_access = disk_page_time(sequential=False)
    assert streamed == pytest.approx(8192 / DEC_RZ55.sustained_bandwidth)
    assert random_access > streamed + DEC_RZ55.avg_rotational_latency


def test_disk_page_time_scales_with_swap_area():
    compact = disk_page_time(swap_area_fraction=0.01)
    sprawling = disk_page_time(swap_area_fraction=1.0)
    assert compact < sprawling


@pytest.mark.parametrize(
    "policy,n_servers,tolerance",
    [
        ("no-reliability", 2, 0.06),
        ("parity-logging", 4, 0.08),
        ("mirroring", 2, 0.08),
        ("write-through", 2, 0.08),
        ("disk", 2, 0.15),
    ],
)
def test_model_predicts_simulation(policy, n_servers, tolerance):
    """Felten/Zahorjan-style closed form vs the full simulator (GAUSS)."""
    from repro.core import build_cluster
    from repro.workloads import Gauss

    kwargs = dict(policy=policy)
    if policy == "parity-logging":
        kwargs.update(n_servers=4, overflow_fraction=0.10)
    elif policy != "disk":
        kwargs["n_servers"] = n_servers
    cluster = build_cluster(**kwargs)
    report = cluster.run(Gauss())
    model = AnalyticModel(machine=DEC_ALPHA_3000_300)
    predicted = model.predict(
        utime=report.utime,
        pageins=report.pageins,
        pageouts=report.pageouts,
        faults=report.faults,
        policy=policy,
        n_servers=n_servers,
    )
    error = abs(predicted - report.etime) / report.etime
    assert error < tolerance, (
        f"{policy}: model {predicted:.1f}s vs sim {report.etime:.1f}s "
        f"({error:.1%} off)"
    )


def test_model_policy_ordering_matches_figure_2():
    """Even without simulating, the model ranks the policies correctly."""
    model = AnalyticModel(machine=DEC_ALPHA_3000_300)
    profile = dict(utime=11.3, pageins=1600, pageouts=2000, faults=4400)
    times = {
        policy: model.predict(policy=policy, n_servers=4 if policy == "parity-logging" else 2, **profile)
        for policy in ("no-reliability", "parity-logging", "mirroring", "disk")
    }
    order = sorted(times, key=times.get)
    assert order == ["no-reliability", "parity-logging", "mirroring", "disk"]


def test_model_unknown_policy_rejected():
    model = AnalyticModel(machine=DEC_ALPHA_3000_300)
    with pytest.raises(ValueError):
        model.predict(utime=1, pageins=1, pageouts=1, faults=1, policy="raid6")
