"""Clients sharing one fabric and donor pool (§3.2 / §6).

Parameterized over the fabric: the paper's shared Ethernet segment
(where N simultaneous paging clients pay a visible contention cost)
versus the switched full-duplex network (where the same clients are
isolated onto their own ports and the slowdown all but vanishes).
Both shapes are the N=small special case of the fleet builder.
"""

from repro.experiments import render_multi_client, run_multi_client
from repro.workloads import Gauss, Mvec, Qsort


def test_multi_client_contention(benchmark, once):
    results = once(benchmark, run_multi_client)
    print("\n" + render_multi_client(results))
    # Both clients complete, both pay a contention cost on the shared
    # wire, and neither is starved (CSMA/CD backoff is roughly fair).
    assert all(s > 1.0 for s in results["slowdowns"])
    assert max(results["slowdowns"]) < 3.0
    assert results["collisions"] > 0


def test_multi_client_switched_isolation(benchmark, once):
    results = once(benchmark, run_multi_client, network="switched")
    print("\n" + render_multi_client(results))
    # Full-duplex ports isolate the clients: no collisions exist on a
    # switched fabric and the concurrent slowdown is within noise.
    assert results["collisions"] == 0
    assert all(1.0 <= s < 1.05 for s in results["slowdowns"])


def test_multi_client_scales_past_two(benchmark, once):
    results = once(
        benchmark,
        run_multi_client,
        workload_factories=(Gauss, Qsort, Mvec),
        n_donors=3,
        network="ethernet",
    )
    print("\n" + render_multi_client(results))
    assert len(results["concurrent"]) == 3
    assert all(s > 1.0 for s in results["slowdowns"])
