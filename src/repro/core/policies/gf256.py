"""GF(256) Reed–Solomon codec for the erasure-coded policies.

Pure python, deterministic, and dependency-free: fragments are plain
``bytes`` and every operation is table-driven.  The field is GF(2^8)
under the AES/QR polynomial ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11d); a
generator-3 exp/log pair gives O(1) multiply and divide.

The code is *systematic* in Lagrange form (the scheme Hydra and Carbink
build on): an 8 KB page splits into ``k`` equal data fragments, each
treated as the evaluations of ``fragment_size`` independent degree-(k-1)
polynomials at the points ``x = 0 .. k-1``.  Parity fragments are the
same polynomials evaluated at ``x = k .. k+m-1``.  Any ``k`` of the
``k+m`` fragments re-interpolate the polynomials, hence the page —
that's the only algebra the policies need:

* ``encode(data_fragments)`` — evaluate at the parity points;
* ``reconstruct(available)`` — interpolate from any k points to whatever
  points are missing.

Both reduce to XOR-accumulating scalar-multiplied fragments, and scalar
multiplication of a whole fragment is a single ``bytes.translate`` with
a per-scalar 256-entry table — the pure-python fast path (one C-level
pass per (fragment, scalar) pair, no per-byte python loop).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ...vm.page import xor_bytes

__all__ = [
    "ReedSolomon",
    "gf_mul",
    "gf_inv",
    "scale_bytes",
    "split_page",
    "join_fragments",
]

_GF_POLY = 0x11D

# exp table doubled so gf_mul can skip the mod-255 reduction.
GF_EXP = [0] * 512
GF_LOG = [0] * 256
_x = 1
for _i in range(255):
    GF_EXP[_i] = _x
    GF_LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= _GF_POLY
for _i in range(255, 512):
    GF_EXP[_i] = GF_EXP[_i - 255]
del _x, _i


def gf_mul(a: int, b: int) -> int:
    """Product in GF(256)."""
    if a == 0 or b == 0:
        return 0
    return GF_EXP[GF_LOG[a] + GF_LOG[b]]


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(256); ``a`` must be non-zero."""
    if a == 0:
        raise ZeroDivisionError("no inverse of 0 in GF(256)")
    return GF_EXP[255 - GF_LOG[a]]


#: scalar -> 256-byte translation table for whole-fragment multiply.
_MUL_TABLES: Dict[int, bytes] = {}


def _mul_table(c: int) -> bytes:
    table = _MUL_TABLES.get(c)
    if table is None:
        table = bytes(gf_mul(c, v) for v in range(256))
        _MUL_TABLES[c] = table
    return table


def scale_bytes(data: bytes, c: int) -> bytes:
    """``c * data`` element-wise in GF(256) (one C-level pass)."""
    if c == 0:
        return bytes(len(data))
    if c == 1:
        return data
    return data.translate(_mul_table(c))


def _lagrange_row(src_points: Sequence[int], y: int) -> Tuple[int, ...]:
    """Coefficients c_i with ``p(y) = XOR_i c_i * p(x_i)`` for the unique
    degree-(len-1) polynomial through the src points.

    In GF(2^n) addition and subtraction are both XOR, so the Lagrange
    basis ``l_i(y) = prod_{j != i} (y - x_j) / (x_i - x_j)`` becomes a
    product of ``(y ^ x_j) / (x_i ^ x_j)`` terms.
    """
    row = []
    for i, xi in enumerate(src_points):
        num = 1
        den = 1
        for j, xj in enumerate(src_points):
            if j == i:
                continue
            num = gf_mul(num, y ^ xj)
            den = gf_mul(den, xi ^ xj)
        row.append(gf_mul(num, gf_inv(den)))
    return tuple(row)


def _combine(
    fragments: Sequence[bytes], coefficients: Sequence[int]
) -> bytes:
    """XOR-accumulate ``coefficients[i] * fragments[i]`` over GF(256)."""
    out: Optional[bytes] = None
    for fragment, c in zip(fragments, coefficients):
        if c == 0:
            continue
        term = scale_bytes(fragment, c)
        out = term if out is None else xor_bytes(out, term)
    if out is None:
        return bytes(len(fragments[0]))
    return out


class ReedSolomon:
    """Systematic RS(k, m) over GF(256) in Lagrange (evaluation) form.

    Fragment index ``i`` is the evaluation point ``x = i``; indices
    ``0..k-1`` are the verbatim data fragments, ``k..k+m-1`` parity.
    Matrices are cached per instance: encode rows once, reconstruction
    rows per distinct surviving-index set (there are at most
    ``C(k+m, k)`` of those, tiny for practical k and m).
    """

    def __init__(self, k: int, m: int):
        if k < 1:
            raise ValueError(f"need at least one data fragment: k={k}")
        if m < 1:
            raise ValueError(f"need at least one parity fragment: m={m}")
        if k + m > 255:
            raise ValueError(f"k+m must fit GF(256) evaluation points: {k + m}")
        self.k = k
        self.m = m
        self.width = k + m
        data_points = tuple(range(k))
        self._encode_rows = tuple(
            _lagrange_row(data_points, k + j) for j in range(m)
        )
        self._decode_cache: Dict[
            Tuple[Tuple[int, ...], Tuple[int, ...]], Tuple[Tuple[int, ...], ...]
        ] = {}

    # ------------------------------------------------------------ encode
    def encode(self, data_fragments: Sequence[bytes]) -> List[bytes]:
        """Parity fragments for ``k`` equal-length data fragments."""
        if len(data_fragments) != self.k:
            raise ValueError(
                f"expected {self.k} data fragments, got {len(data_fragments)}"
            )
        return [_combine(data_fragments, row) for row in self._encode_rows]

    # ------------------------------------------------------- reconstruct
    def reconstruct(
        self,
        available: Dict[int, bytes],
        want: Optional[Sequence[int]] = None,
    ) -> Dict[int, bytes]:
        """Rebuild fragments from any ``k`` survivors.

        ``available`` maps fragment index -> bytes (at least ``k``
        entries; extras are ignored deterministically, preferring data
        fragments, then lower indices).  ``want`` selects the indices to
        produce (default: every missing index).  Returns
        ``{index: fragment}`` for the requested indices; indices already
        in ``available`` are returned as-is without algebra.
        """
        if want is None:
            want = [i for i in range(self.width) if i not in available]
        out: Dict[int, bytes] = {}
        todo = []
        for index in want:
            if not 0 <= index < self.width:
                raise ValueError(f"fragment index out of range: {index}")
            if index in available:
                out[index] = available[index]
            else:
                todo.append(index)
        if not todo:
            return out
        if len(available) < self.k:
            raise ValueError(
                f"need {self.k} fragments to reconstruct, have {len(available)}"
            )
        src = tuple(sorted(available, key=lambda i: (i >= self.k, i))[: self.k])
        key = (src, tuple(todo))
        rows = self._decode_cache.get(key)
        if rows is None:
            rows = tuple(_lagrange_row(src, index) for index in todo)
            self._decode_cache[key] = rows
        fragments = [available[i] for i in src]
        for index, row in zip(todo, rows):
            out[index] = _combine(fragments, row)
        return out

    def data_from(self, available: Dict[int, bytes]) -> List[bytes]:
        """The ``k`` data fragments, reconstructing any that are missing."""
        rebuilt = self.reconstruct(available, want=range(self.k))
        return [rebuilt[i] for i in range(self.k)]


# ------------------------------------------------------------ page <-> frags
def split_page(contents: bytes, k: int, fragment_size: int) -> List[bytes]:
    """Split a page into ``k`` fragments of ``fragment_size`` bytes.

    The last fragment is zero-padded: ``join_fragments`` truncates back
    to the original page size, so the round trip is byte-identical.
    """
    padded = contents.ljust(k * fragment_size, b"\0")
    return [
        padded[i * fragment_size : (i + 1) * fragment_size] for i in range(k)
    ]


def join_fragments(data_fragments: Sequence[bytes], page_size: int) -> bytes:
    """Concatenate data fragments and strip the split-time padding."""
    return b"".join(data_fragments)[:page_size]
