"""repro — a reproduction of Markatos & Dramitinos, "Implementation of a
Reliable Remote Memory Pager" (USENIX 1996).

The package implements the paper's remote memory pager and every
substrate its evaluation needs, on top of a deterministic discrete-event
simulator:

>>> from repro import build_cluster, Gauss
>>> cluster = build_cluster(policy="parity-logging", n_servers=4,
...                         overflow_fraction=0.10)
>>> report = cluster.run(Gauss())
>>> report.etime < 60          # remote memory vs ~80 s on the local disk
True

Layers (see DESIGN.md):

* :mod:`repro.sim` — the discrete-event kernel;
* :mod:`repro.net` — CSMA/CD Ethernet, switched networks, transport;
* :mod:`repro.disk` — the DEC RZ55 model and swap backends;
* :mod:`repro.vm` — page tables, replacement, the paging machine;
* :mod:`repro.workloads` — the paper's six applications;
* :mod:`repro.cluster` — workstations, registry, idle-memory traces;
* :mod:`repro.core` — the pager, servers, and reliability policies;
* :mod:`repro.analysis` / :mod:`repro.experiments` — the evaluation.
"""

from .config import (
    DEC_ALPHA_3000_300,
    DEC_RZ55,
    ETHERNET_10MBPS,
    PAGE_SIZE,
    TCP_IP_1996,
    DiskSpec,
    EthernetSpec,
    MachineSpec,
    ProtocolSpec,
    SwitchedNetworkSpec,
    fast_network,
)
from .core import (
    POLICY_NAMES,
    BasicParity,
    Cluster,
    CrashInjector,
    MemoryServer,
    Mirroring,
    NoReliability,
    ParityLogging,
    RemoteMemoryPager,
    WriteThrough,
    build_cluster,
)
from .errors import (
    ConfigurationError,
    NetworkPartitioned,
    PageNotFound,
    PagingError,
    RecoveryError,
    ReproError,
    ServerCrashed,
    ServerUnavailable,
    SwapSpaceExhausted,
)
from .runner import ExperimentRunner, RunResult, RunSpec
from .vm import CompletionReport, Machine
from .workloads import (
    PAPER_WORKLOADS,
    Fft,
    Gauss,
    ImageFilter,
    KernelBuild,
    Mvec,
    Qsort,
    Workload,
)

__version__ = "1.0.0"

__all__ = [
    "build_cluster",
    "Cluster",
    "POLICY_NAMES",
    "RemoteMemoryPager",
    "MemoryServer",
    "NoReliability",
    "Mirroring",
    "BasicParity",
    "ParityLogging",
    "WriteThrough",
    "CrashInjector",
    "Machine",
    "CompletionReport",
    "RunSpec",
    "RunResult",
    "ExperimentRunner",
    "Workload",
    "PAPER_WORKLOADS",
    "Mvec",
    "Gauss",
    "Qsort",
    "Fft",
    "ImageFilter",
    "KernelBuild",
    "PAGE_SIZE",
    "MachineSpec",
    "EthernetSpec",
    "SwitchedNetworkSpec",
    "DiskSpec",
    "ProtocolSpec",
    "DEC_ALPHA_3000_300",
    "DEC_RZ55",
    "ETHERNET_10MBPS",
    "TCP_IP_1996",
    "fast_network",
    "ReproError",
    "ConfigurationError",
    "PagingError",
    "PageNotFound",
    "SwapSpaceExhausted",
    "ServerCrashed",
    "ServerUnavailable",
    "RecoveryError",
    "NetworkPartitioned",
]
