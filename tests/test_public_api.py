"""Public-API hygiene: exports resolve, are documented, and round-trip."""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.net",
    "repro.disk",
    "repro.vm",
    "repro.workloads",
    "repro.cluster",
    "repro.compile",
    "repro.core",
    "repro.analysis",
    "repro.experiments",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_docstrings(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__ and package.__doc__.strip(), f"{package_name} undocumented"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_classes_and_functions_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in package.__all__:
        obj = getattr(package, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (inspect.getdoc(obj) or "").strip():
                undocumented.append(name)
            if inspect.isclass(obj):
                for method_name, method in inspect.getmembers(obj, inspect.isfunction):
                    if method_name.startswith("_"):
                        continue
                    # getdoc walks the MRO: an override documented on its
                    # interface (e.g. Pager.pagein) counts as documented.
                    if not (inspect.getdoc(method) or "").strip():
                        undocumented.append(f"{name}.{method_name}")
    assert not undocumented, f"{package_name}: undocumented public API: {undocumented}"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_quickstart_docstring_is_accurate():
    """The package docstring promises a <60 s GAUSS run; hold it to it."""
    from repro import Gauss, build_cluster

    cluster = build_cluster(
        policy="parity-logging", n_servers=4, overflow_fraction=0.10
    )
    report = cluster.run(Gauss())
    assert report.etime < 60


def test_policy_names_constant_matches_builder():
    from repro import POLICY_NAMES, build_cluster

    for policy in POLICY_NAMES:
        kwargs = {"policy": policy}
        if policy == "mirroring":
            kwargs["n_servers"] = 2
        build_cluster(**kwargs)  # must not raise
