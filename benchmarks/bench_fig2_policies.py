"""Figure 2: six applications x four paging configurations.

The paper's headline result: remote memory beats the disk for every
application (up to 96% for GAUSS); parity logging stays close to
no-reliability; mirroring beats disk everywhere except MVEC.
"""

from repro.analysis import FIG2_SECONDS, shape_check
from repro.experiments import render_fig2, run_fig2


def test_fig2_policy_comparison(benchmark, once):
    reports = once(benchmark, run_fig2)
    print("\n" + render_fig2(reports))
    measured = {
        app: {policy: r.etime for policy, r in by_policy.items()}
        for app, by_policy in reports.items()
    }
    for app, by_policy in measured.items():
        check = shape_check(by_policy, FIG2_SECONDS[app])
        assert check["order_matches"], f"{app}: policy ranking diverges from paper"
    # Headline claims (shape, with slack): GAUSS no-rel vs disk near 2x.
    gauss_speedup = measured["gauss"]["disk"] / measured["gauss"]["no-reliability"]
    assert gauss_speedup > 1.5
    # Mirroring loses to disk only for MVEC.
    assert measured["mvec"]["mirroring"] > measured["mvec"]["disk"]
    for app in ("gauss", "qsort", "fft", "filter", "cc"):
        assert measured[app]["mirroring"] < measured[app]["disk"]
    # Parity logging within 25% of no-reliability everywhere (paper: close).
    for app in measured:
        ratio = measured[app]["parity-logging"] / measured[app]["no-reliability"]
        assert ratio < 1.35, f"{app}: parity logging too far from no-reliability"
