"""Diurnal capacity: Figure 1's idle-memory trace driving donor grants."""

from repro.experiments import render_diurnal, run_diurnal


def test_diurnal_capacity(benchmark, once):
    results = once(benchmark, run_diurnal)
    print("\n" + render_diurnal(results))
    night = results["Thursday 3am"]
    trough = results["Thursday 11am"]
    weekend = results["Saturday noon"]
    # Nights and weekends absorb the whole working set remotely.
    assert night["disk_pages"] == 0
    assert weekend["disk_pages"] == 0
    # The business-hours trough forces disk fallback...
    assert trough["disk_pages"] > 0
    # ...and costs time, but far less than all-disk paging would.
    assert trough["etime"] > night["etime"]
    assert trough["etime"] < 1.5 * night["etime"]
