"""Pipelined datapath vs the synchronous baseline (beyond-paper, PR 4).

Two sweeps against the paper's §4.3 cost model:

* **Window sweep** — the fig2 workload under parity logging with the
  write-behind queue's in-flight window at 1, 2, 4, 8.  Window 1 *is*
  the synchronous baseline (the pipeline never engages; the report is
  bit-identical to the paper-faithful cell).  Larger windows amortise
  per-message protocol CPU across clustered batches, so the modeled
  paging cost ``pptime + btime`` falls monotonically while the transfer
  count stays put: the win is protocol-processing amortisation, exactly
  the §4.3 lever ("pptime is becoming the bottleneck").
* **Prefetch probe** — the adaptive prefetcher against a sequential
  scan (trend: every fault predicted, hit-rate near 1) and a uniform
  random stream (no trend, hit-rate near 0: no false wins, no wasted
  transfers).

``pptime`` here is *measured*, not modeled: the protocol stack counts
the CPU it actually charged per page send (``protocol_cpu_us``), which
is what batching shrinks.  ``btime`` is modeled as transfers x the
idle-Ethernet wire time of one page, the same model
:func:`repro.analysis.model.ethernet_page_time` uses.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from ..analysis.model import ethernet_page_time
from ..analysis.report import format_table
from ..config import MachineSpec
from ..runner import RunSpec, default_runner

__all__ = [
    "WINDOWS",
    "PREFETCH_WORKLOADS",
    "run_pipelining",
    "render_pipelining",
]

WINDOWS = (1, 2, 4, 8)

#: Small machine for the prefetch probe: real paging pressure in seconds
#: of simulated time (same scale the resilience campaign uses).
_PROBE_MACHINE = MachineSpec(
    name="prefetch-probe",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)

_PROBE_BUILD = dict(
    machine_spec=_PROBE_MACHINE,
    content_mode=True,
    seed=3,
    n_servers=4,
    server_capacity_pages=600,
)

#: The two ends of the predictability spectrum the acceptance pins.
PREFETCH_WORKLOADS: Dict[str, tuple] = {
    "sequential-scan": ("sequential-scan", dict(n_pages=400, passes=3, write=True)),
    "uniform-random": ("uniform-random", dict(n_pages=400, n_refs=1200, seed=7)),
}


def _metric(report, name: str, default: float = 0.0) -> float:
    return report.meta.get("metrics", {}).get(name, default)


def modeled_paging_cost(report) -> Dict[str, float]:
    """Measured pptime + modeled btime for one run (seconds)."""
    pptime = _metric(report, "net.protocol.protocol_cpu_us") / 1e6
    wire = ethernet_page_time() - 0.0016  # wire share of one page transfer
    btime = report.page_transfers * wire
    return {
        "pptime": pptime,
        "btime": btime,
        "paging_cost": pptime + btime,
        "share_of_ptime": (pptime + btime) / report.ptime if report.ptime else 0.0,
    }


def run_pipelining(
    windows: Sequence[int] = WINDOWS,
    app: str = "gauss",
    policy: str = "parity-logging",
    prefetch_depth: int = 8,
    prefetch_workloads: Optional[Iterable[str]] = None,
    runner=None,
) -> Dict[str, Dict]:
    """Run both sweeps; returns ``{"windows": ..., "prefetch": ...}``.

    Window 1 carries *no* pipeline overrides, so its spec is literally
    the synchronous baseline cell (same cache fingerprint as fig2's) —
    the bit-identity claim is structural, not a tolerance.
    """
    run = (runner or default_runner()).run
    windows = list(windows)
    names = list(prefetch_workloads) if prefetch_workloads else list(PREFETCH_WORKLOADS)
    specs = []
    for window in windows:
        overrides = {"pipeline_window": window} if window > 1 else {}
        specs.append(
            RunSpec.make(
                app, policy, overrides=overrides, label=f"{app}/window={window}"
            )
        )
    for name in names:
        workload, workload_kwargs = PREFETCH_WORKLOADS[name]
        overrides = dict(_PROBE_BUILD, pipeline_prefetch=prefetch_depth)
        specs.append(
            RunSpec.make(
                workload,
                policy,
                workload_kwargs=workload_kwargs,
                overrides=overrides,
                label=f"{name}/prefetch={prefetch_depth}",
            )
        )
    results = iter(run(specs))
    out: Dict[str, Dict] = {"windows": {}, "prefetch": {}}
    for window in windows:
        report = next(results).report
        out["windows"][window] = {"report": report, **modeled_paging_cost(report)}
    for name in names:
        report = next(results).report
        pageins = _metric(report, "pager.pageins")
        hits = _metric(report, "pipeline.prefetch_hits")
        issued = _metric(report, "pipeline.prefetch_issued")
        out["prefetch"][name] = {
            "report": report,
            "pageins": int(pageins),
            "hits": int(hits),
            "issued": int(issued),
            "hit_rate": hits / pageins if pageins else 0.0,
        }
    return out


def render_pipelining(results: Dict[str, Dict]) -> str:
    """Window-sweep table + prefetch hit-rate table."""
    window_rows = []
    baseline = None
    for window, cell in sorted(results["windows"].items()):
        report = cell["report"]
        if baseline is None:
            baseline = cell["paging_cost"]
        saved = baseline - cell["paging_cost"]
        window_rows.append(
            [
                str(window),
                f"{report.etime:.2f}",
                f"{report.ptime:.2f}",
                f"{cell['pptime']:.2f}",
                f"{cell['btime']:.2f}",
                f"{cell['paging_cost']:.2f}",
                f"{cell['share_of_ptime']:.0%}",
                f"-{saved:.2f}" if saved else "baseline",
                str(
                    int(
                        _metric(report, "pipeline.coalesced")
                        + _metric(report, "pipeline.writeback_hits")
                    )
                ),
            ]
        )
    lines = [
        format_table(
            [
                "window",
                "etime (s)",
                "ptime (s)",
                "pptime (s)",
                "btime (s)",
                "pp+bt (s)",
                "share",
                "vs sync",
                "coalesce+wb",
            ],
            window_rows,
            title="Write-behind window sweep (parity logging): protocol-CPU "
            "amortisation shrinks the modeled paging cost monotonically; "
            "window 1 is the synchronous paper datapath, bit for bit",
        ),
        "",
    ]
    prefetch_rows = []
    for name, cell in results["prefetch"].items():
        prefetch_rows.append(
            [
                name,
                str(cell["pageins"]),
                str(cell["issued"]),
                str(cell["hits"]),
                f"{cell['hit_rate']:.0%}",
                f"{cell['report'].etime:.2f}",
            ]
        )
    lines.append(
        format_table(
            ["workload", "pageins", "issued", "hits", "hit rate", "etime (s)"],
            prefetch_rows,
            title="Adaptive prefetch probe: majority-trend detection wins on "
            "predictable streams and stands down on random ones",
        )
    )
    return "\n".join(lines)
